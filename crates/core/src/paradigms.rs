//! The two search paradigms on top of the subspace machinery:
//!
//! * [`run_best_first`] — Alg. 2: subspaces are enqueued with cheap lower
//!   bounds (`CompLB`) and their shortest paths are computed lazily, only
//!   when a subspace reaches the front of the queue.
//! * [`run_iter_bound`] — Alg. 4: like BestFirst, but a popped unsolved
//!   subspace is first probed with `TestLB` under an iteratively enlarged
//!   threshold τ (`τ' = max(⌈α·base⌉, base+1)` with
//!   `base = max(lb(S), Q.top().key)`), so full shortest-path searches are
//!   replaced by cheap bounded probes wherever possible.
//!
//! Both are generic over a [`SubspaceOracle`], which supplies the numeric
//! one-hop bounds for `CompLB`, the per-node [`Estimate`]s for the
//! searches, and — for the `SPT_I` approach — the hook that grows the
//! incremental SPT to τ before each probe. This is how `BestFirst`,
//! `IterBound`, `IterBound-SPT_P`, `IterBound-SPT_I` and all their
//! no-landmark variants share one implementation each.
//!
//! The subspace queue holds `(vertex, Option<FoundPath>)` entries —
//! Copy arena handles, not node vectors — and is pooled on the engine
//! scratch, so the paradigm loops allocate nothing at steady state.

use kpj_graph::{Length, NodeId, PathStore, INFINITE_LENGTH};
use kpj_heap::MinHeap;
use kpj_obs::Stage;
use kpj_sp::Estimate;

use crate::par::{ParPool, PAR_BATCH_MAX};
use crate::pseudo_tree::{PseudoTree, VertexId, ROOT};
use crate::search_core::{
    comp_lb, divide_subspace, emit_found, subspace_search, FoundPath, PathSink, SubspaceCtx,
    SubspaceScratch, SubspaceSearch,
};
use crate::stats::QueryStats;

/// Bound provider driving the paradigm loops (see module docs).
pub(crate) trait SubspaceOracle {
    /// Numeric lower bound used by `CompLB` one-hop look-ahead: a lower
    /// bound on the remaining distance from `v` to the goal side.
    fn lb_num(&self, v: NodeId) -> Length;
    /// Admissibility / heuristic verdict for the subspace searches.
    fn estimate(&self, v: NodeId) -> Estimate;
    /// Grow incremental structures so that every path of length ≤ `tau` is
    /// covered (no-op except for `SPT_I`).
    fn prepare_tau(&mut self, _tau: Length, _stats: &mut QueryStats) {}
    /// Size of the oracle's SPT, for [`QueryStats::spt_nodes`].
    fn spt_nodes(&self) -> usize {
        0
    }
}

/// The paper's landmark-only oracle (`BestFirst`, `IterBound`): Eq. (2)
/// bounds (or zero without landmarks).
pub(crate) struct PlainOracle<F: Fn(NodeId) -> Length> {
    pub lb: F,
}

impl<F: Fn(NodeId) -> Length> SubspaceOracle for PlainOracle<F> {
    #[inline]
    fn lb_num(&self, v: NodeId) -> Length {
        (self.lb)(v)
    }
    #[inline]
    fn estimate(&self, v: NodeId) -> Estimate {
        match (self.lb)(v) {
            INFINITE_LENGTH => Estimate::Unreachable,
            h => Estimate::Bound(h),
        }
    }
}

/// The queue entry: a subspace with either its known shortest path or just
/// a lower bound (the paper's `⟨S, lb(S), P⟩` triple; the key lives in the
/// heap).
type Entry = (VertexId, Option<FoundPath>);

/// Drain the *round batch*: starting from the just-popped unsolved entry
/// `first`, keep popping while the queue head is also unsolved, up to
/// [`PAR_BATCH_MAX`] entries. Every drained key is ≤ every remaining key,
/// so each drained subspace would have been searched before any queued
/// `Found` could terminate the loop — except possibly in the query's final
/// batch, where the overshoot is bounded by the cap.
///
/// The drain rule is a pure function of the queue state and runs
/// identically in sequential and parallel mode: it is the canonical
/// algorithm, not a parallel-only code path (DESIGN.md §12).
fn drain_round_batch(
    q: &mut MinHeap<Length, Entry>,
    first: (Length, VertexId),
    batch: &mut Vec<(Length, VertexId)>,
    stats: &mut QueryStats,
) {
    batch.clear();
    batch.push(first);
    while batch.len() < PAR_BATCH_MAX {
        let Some((k, &(v, payload))) = q.peek() else {
            break;
        };
        if payload.is_some() {
            break;
        }
        q.pop();
        stats.heap_pops += 1;
        batch.push((k, v));
    }
}

/// Run one round batch of subspace searches (`bound = None` for the
/// best-first paradigm's unbounded `CompSP`s, `Some(τ)` for iter-bound's
/// `TestLB` probes) and push the outcomes back in batch order. Returns
/// `true` if a search aborted on the deadline (the caller stops).
///
/// With a pool and ≥ 2 tasks the searches fan out across threads into
/// worker-local arenas; found chains are then copied into the main arena
/// in batch order, reproducing the sequential arena layout bit for bit.
#[allow(clippy::too_many_arguments)]
fn run_search_batch<O: SubspaceOracle + Sync>(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    oracle: &O,
    batch: &[(Length, VertexId)],
    bound: Option<Length>,
    q: &mut MinHeap<Length, Entry>,
    par: Option<&ParPool>,
    stats: &mut QueryStats,
) -> bool {
    match par {
        Some(pool) if batch.len() >= 2 && pool.workers() >= 2 => {
            stats.rounds_parallel += 1;
            stats.candidates_stolen += batch.len();
            let ftick = scratch.trace.start();
            let results = pool.fan_out(batch, |_, &(_, v), ws| {
                subspace_search(
                    ctx,
                    &mut ws.scratch,
                    &mut ws.store,
                    tree,
                    v,
                    &mut |x| oracle.estimate(x),
                    bound,
                    &mut ws.stats,
                )
            });
            let mut aborted = false;
            for (r, &(_, vertex)) in results.iter().zip(batch) {
                match r.outcome {
                    SubspaceSearch::Found(f) => {
                        let f = pool.copy_chain(r.worker, f, store);
                        q.push(f.length, (vertex, Some(f)));
                    }
                    SubspaceSearch::Bounded => {
                        q.push(
                            bound.expect("bounded outcome implies a bound"),
                            (vertex, None),
                        );
                    }
                    SubspaceSearch::Empty => {}
                    SubspaceSearch::Aborted => {
                        // Match the sequential schedule: results after the
                        // first abort are discarded unmerged.
                        aborted = true;
                        break;
                    }
                }
            }
            pool.absorb_worker_stats(stats);
            scratch.trace.record(Stage::ParFanout, ftick);
            aborted
        }
        _ => {
            for &(_, vertex) in batch {
                match subspace_search(
                    ctx,
                    scratch,
                    store,
                    tree,
                    vertex,
                    &mut |v| oracle.estimate(v),
                    bound,
                    stats,
                ) {
                    SubspaceSearch::Found(f) => q.push(f.length, (vertex, Some(f))),
                    SubspaceSearch::Bounded => {
                        q.push(
                            bound.expect("bounded outcome implies a bound"),
                            (vertex, None),
                        );
                    }
                    SubspaceSearch::Empty => {}
                    SubspaceSearch::Aborted => return true,
                }
            }
            false
        }
    }
}

/// Alg. 2. Streams paths into `sink` in non-decreasing length order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_best_first<O: SubspaceOracle + Sync>(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &mut PseudoTree,
    oracle: &mut O,
    sink: &mut dyn PathSink,
    reverse_output: bool,
    par: Option<&ParPool>,
    stats: &mut QueryStats,
) {
    let mut q = std::mem::take(&mut scratch.para_heap);
    q.clear();
    let lb0 = comp_lb(ctx, scratch, tree, ROOT, &mut |v| oracle.lb_num(v), stats);
    if lb0 != INFINITE_LENGTH {
        q.push(lb0, (ROOT, None));
    }
    let mut more = true;
    while more {
        if ctx.deadline.expired() {
            break;
        }
        let Some((key, (vertex, payload))) = q.pop() else {
            break;
        };
        stats.heap_pops += 1;
        match payload {
            Some(found) => {
                more = emit(
                    ctx,
                    scratch,
                    store,
                    tree,
                    oracle,
                    found,
                    &mut q,
                    sink,
                    reverse_output,
                    stats,
                );
            }
            None => {
                let mut batch = std::mem::take(&mut scratch.round_batch);
                drain_round_batch(&mut q, (key, vertex), &mut batch, stats);
                let aborted = run_search_batch(
                    ctx, scratch, store, tree, &*oracle, &batch, None, &mut q, par, stats,
                );
                scratch.round_batch = batch;
                if aborted {
                    break;
                }
            }
        }
    }
    scratch.para_heap = q;
    stats.spt_nodes = stats.spt_nodes.max(oracle.spt_nodes());
}

/// Alg. 4. `init` is the query's first shortest path when the caller
/// already computed it as a by-product (`SPT_P`/`SPT_I` construction);
/// otherwise it is computed here with an unbounded subspace search.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_iter_bound<O: SubspaceOracle + Sync>(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &mut PseudoTree,
    oracle: &mut O,
    sink: &mut dyn PathSink,
    alpha: f64,
    init: Option<FoundPath>,
    reverse_output: bool,
    par: Option<&ParPool>,
    stats: &mut QueryStats,
) {
    debug_assert!(alpha > 1.0, "α must exceed 1 (got {alpha})");
    let init = init.or_else(|| {
        match subspace_search(
            ctx,
            scratch,
            store,
            tree,
            ROOT,
            &mut |v| oracle.estimate(v),
            None,
            stats,
        ) {
            SubspaceSearch::Found(f) => Some(f),
            _ => None,
        }
    });
    let Some(first) = init else {
        stats.spt_nodes = stats.spt_nodes.max(oracle.spt_nodes());
        return;
    };
    let mut q = std::mem::take(&mut scratch.para_heap);
    q.clear();
    q.push(first.length, (ROOT, Some(first)));

    let mut more = true;
    while more {
        if ctx.deadline.expired() {
            break;
        }
        let Some((key, (vertex, payload))) = q.pop() else {
            break;
        };
        stats.heap_pops += 1;
        match payload {
            Some(found) => {
                more = emit(
                    ctx,
                    scratch,
                    store,
                    tree,
                    oracle,
                    found,
                    &mut q,
                    sink,
                    reverse_output,
                    stats,
                );
            }
            None => {
                let mut batch = std::mem::take(&mut scratch.round_batch);
                drain_round_batch(&mut q, (key, vertex), &mut batch, stats);
                // Line 9: enlarge τ from the batch's own bounds and the
                // best other bound in the queue. Drained keys are
                // non-decreasing, so the last one dominates the batch;
                // with a batch of one this is exactly the paper's
                // `max(lb(S), Q.top().key)`. One shared τ serves the
                // whole round — a valid (possibly larger) threshold for
                // every probe in it — so `prepare_tau` runs once, on this
                // thread, freezing the oracle read-only for the round.
                let last = batch.last().expect("batch holds `first`").0;
                let base = last.max(q.peek_key().unwrap_or(last));
                let tau = next_tau(base, alpha);
                stats.tau_updates += 1;
                stats.final_tau = stats.final_tau.max(tau);
                // `prepare_tau` is where SPT_I regrows its tree — SPT
                // build time, not search time.
                let tick = scratch.trace.start();
                oracle.prepare_tau(tau, stats);
                scratch.trace.record(Stage::SptBuild, tick);
                let aborted = run_search_batch(
                    ctx,
                    scratch,
                    store,
                    tree,
                    &*oracle,
                    &batch,
                    Some(tau),
                    &mut q,
                    par,
                    stats,
                );
                scratch.round_batch = batch;
                if aborted {
                    break;
                }
            }
        }
    }
    scratch.para_heap = q;
    stats.spt_nodes = stats.spt_nodes.max(oracle.spt_nodes());
}

/// τ' = max(⌈α·base⌉, base+1): the paper's geometric growth, made strictly
/// increasing under integer lengths. (`f64` rounding is harmless: any
/// τ' > base preserves correctness, and real lengths stay far below 2^53.)
pub(crate) fn next_tau(base: Length, alpha: f64) -> Length {
    let scaled = (base as f64 * alpha).ceil() as Length;
    scaled.max(base.saturating_add(1))
}

/// Shared emission step: divide the subspace, lower-bound and enqueue the
/// affected subspaces (Alg. 2 lines 6–10), then deliver the path. Returns
/// the sink's continue/stop verdict.
#[allow(clippy::too_many_arguments)]
fn emit<O: SubspaceOracle>(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &mut PseudoTree,
    oracle: &mut O,
    found: FoundPath,
    q: &mut MinHeap<Length, Entry>,
    sink: &mut dyn PathSink,
    reverse_output: bool,
    stats: &mut QueryStats,
) -> bool {
    let tick = scratch.trace.start();
    let emitted_len = found.length;
    divide_subspace(ctx, scratch, store, tree, found, stats);
    let affected = std::mem::take(&mut scratch.affected);
    for &v in &affected {
        let lb = comp_lb(ctx, scratch, tree, v, &mut |x| oracle.lb_num(x), stats);
        if lb != INFINITE_LENGTH {
            // Line 9 of Alg. 2: no path in a sub-subspace can be shorter
            // than the path just removed from it.
            q.push(lb.max(emitted_len), (v, None));
        } else {
            // A provably empty sub-subspace never enters the queue.
            stats.subspaces_skipped += 1;
        }
    }
    scratch.affected = affected;
    let more = emit_found(scratch, store, tree, found, reverse_output, sink);
    scratch.trace.record(Stage::DeviationRound, tick);
    more
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_tau_grows_strictly_and_geometrically() {
        assert_eq!(next_tau(0, 1.1), 1);
        assert_eq!(next_tau(10, 1.1), 11);
        // f64 rounding may land on either side of the exact product; any
        // value ≥ ⌈α·base⌉ − 1 and > base preserves correctness.
        let t = next_tau(100, 1.1);
        assert!((110..=111).contains(&t), "{t}");
        let t = next_tau(100, 1.5);
        assert!((150..=151).contains(&t), "{t}");
        assert!(next_tau(Length::MAX - 1, 1.1) >= Length::MAX - 1);
    }

    // The paradigm loops themselves are exercised end-to-end through the
    // `QueryEngine` tests in `engine.rs` and the workspace integration
    // tests, which cross-check them against brute force on many graphs.
}
