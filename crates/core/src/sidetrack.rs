//! The `Sidetrack` engine (beyond the paper): Kurz–Mutzel-style
//! sidetrack-edge enumeration (arXiv:1601.02867) adapted to the KPJ
//! subspace framework.
//!
//! # Idea
//!
//! Eppstein-family KSSP algorithms observe that any `s → V_T` path is the
//! shortest-path tree walk plus a sequence of *sidetrack edges* — edges
//! `(u, v)` that leave the reverse shortest-path tree. The deviation
//! baselines (`DA`, `DA-SPT`) spend their time running one constrained
//! Dijkstra per deviation; Kurz–Mutzel instead *scan* the sidetrack edges
//! available at each deviation point and splice the SPT suffix below the
//! chosen sidetrack, so the common case does **zero** graph search per
//! emitted path.
//!
//! This module grafts that idea onto the paper's subspace machinery:
//!
//! 1. Build the full reverse SPT from `V_T` once (`DenseDijkstra`,
//!    pooled on the engine with the `DA-SPT` baselines' scratch). Its
//!    distances `d(v) = δ(v, V_T)` are exact, so landmark bounds are
//!    never consulted.
//! 2. Keep the paper's pseudo-tree of subspaces, but *resolve* a popped
//!    subspace lazily: scan its allowed first-hop (sidetrack) edges
//!    `(u, v)`; the cheapest candidate `ω(prefix) + ω(u,v) + d(v)` is an
//!    exact lower bound on every path in the subspace (`d` is exact).
//! 3. If the SPT tree path below the best candidate is disjoint from the
//!    subspace prefix, splicing it on *achieves* the bound — the subspace
//!    shortest path is assembled straight out of SPT parent pointers with
//!    no search at all (`stats.sidetrack_splices`).
//! 4. Only when the suffix collides with the prefix (the deviation must
//!    detour around its own history) does a constrained search run — and
//!    then τ-bounded (`next_tau`, the paper's §5 machinery) with the
//!    exact SPT distance as a consistent A* heuristic
//!    (`stats.sidetrack_repairs`).
//!
//! Paths stay in the implicit representation throughout: a found path is
//! a `Copy` [`FoundPath`] handle into the query's [`PathStore`] prefix
//! arena — the sidetrack suffix is pushed as arena entries, never as an
//! owned `Vec`. A warmed engine resolves, emits and divides without heap
//! allocation.
//!
//! # Correctness
//!
//! * The reverse SPT is seeded with every target at distance 0 under
//!   strict relaxation, so tree paths stop at the *first* target and
//!   interior tree nodes are never targets — the same goal semantics as
//!   the subspace searches.
//! * SPT tree paths are simple; the splice test additionally rejects any
//!   suffix touching the prefix (including `u` itself), so spliced paths
//!   are simple end to end.
//! * Every queue key is a true lower bound of its subspace (candidate
//!   scan for unresolved entries, exact length for resolved ones), and a
//!   resolved path's length never undercuts the key it was enqueued at —
//!   so the best-first pop order emits paths in non-decreasing length
//!   order by the same argument as `BestFirst` (Theorem 4.2).

use kpj_graph::{Length, PathId, PathStore, INFINITE_LENGTH};
use kpj_obs::Stage;
use kpj_sp::{DenseDijkstra, Estimate, NO_PARENT};

use crate::paradigms::next_tau;
use crate::pseudo_tree::{PseudoTree, VertexId, ROOT, VIRTUAL_NODE};
use crate::search_core::{
    comp_lb, divide_subspace, emit_found, subspace_search, FoundPath, PathSink, SubspaceCtx,
    SubspaceScratch, SubspaceSearch,
};
use crate::stats::QueryStats;

/// Outcome of resolving one subspace by sidetrack scanning.
enum Resolution {
    /// The subspace's shortest path, assembled with zero search (the
    /// trivial prefix-path or a clean SPT splice).
    Spliced(FoundPath),
    /// The best sidetrack's SPT suffix collided with the prefix; the
    /// carried length is the scan's exact lower bound for the repair τ.
    Collision(Length),
    /// No sidetrack candidate at all — the subspace is empty.
    Empty,
}

/// Resolve the subspace at `vertex`: scan its sidetrack candidates and
/// splice the cheapest SPT suffix if it is prefix-disjoint.
fn resolve(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    spt: &DenseDijkstra,
    vertex: VertexId,
    stats: &mut QueryStats,
) -> Resolution {
    scratch.prefix_set.clear();
    for n in tree.prefix_nodes(vertex) {
        scratch.prefix_set.insert(n as usize);
    }
    let u = tree.node(vertex);
    let plen = tree.prefix_len(vertex);

    // Candidate scan — the mirror of `comp_lb`, but remembering *which*
    // first hop attains the minimum. Strict `<` keeps the earliest
    // minimum, matching `comp_lb`'s trivial-first tie order.
    let mut best_cost = INFINITE_LENGTH;
    let mut best_hop = NO_PARENT;
    let trivial_ok =
        u != VIRTUAL_NODE && ctx.goal_set.contains(u as usize) && !tree.emitted(vertex);
    if trivial_ok {
        best_cost = plen;
    }
    if u == VIRTUAL_NODE {
        for &f in ctx.fanout {
            stats.sidetracks_scanned += 1;
            if tree.is_excluded(vertex, f) {
                continue;
            }
            // Virtual edges weigh 0: the candidate is d(f) itself.
            if spt.dist(f) < best_cost {
                best_cost = spt.dist(f);
                best_hop = f;
            }
        }
    } else {
        for e in ctx.direction.edges(ctx.g, u) {
            stats.sidetracks_scanned += 1;
            if scratch.prefix_set.contains(e.to as usize) || tree.is_excluded(vertex, e.to) {
                continue;
            }
            let cost = plen
                .saturating_add(e.weight as Length)
                .saturating_add(spt.dist(e.to));
            if cost < best_cost {
                best_cost = cost;
                best_hop = e.to;
            }
        }
    }

    if best_cost == INFINITE_LENGTH {
        return Resolution::Empty;
    }
    if best_hop == NO_PARENT {
        // The prefix itself is the subspace's shortest path.
        stats.sidetrack_splices += 1;
        let tail = store.push(None, u, plen);
        return Resolution::Spliced(FoundPath {
            tail,
            length: plen,
            vertex,
            suffix_len: 0,
        });
    }

    // Splice test: walk the SPT tree path below the chosen sidetrack. Any
    // prefix node on it means the bound is not attained by splicing.
    // (`best_hop` itself was already checked against the prefix above.)
    let mut tail_len = 1u32;
    let mut cur = best_hop;
    loop {
        let p = spt.parent(cur);
        if p == NO_PARENT {
            break;
        }
        if scratch.prefix_set.contains(p as usize) {
            return Resolution::Collision(best_cost);
        }
        tail_len += 1;
        cur = p;
    }

    // Clean: assemble seed + sidetrack head + SPT suffix straight into
    // the arena. Cumulative length at a suffix node x is
    // `best_cost − d(x)` (everything after x is exactly x's tree path).
    stats.sidetrack_splices += 1;
    let mut id: Option<PathId> = None;
    if u != VIRTUAL_NODE {
        id = Some(store.push(None, u, plen));
    }
    id = Some(store.push(id, best_hop, best_cost - spt.dist(best_hop)));
    let mut cur = best_hop;
    for _ in 1..tail_len {
        cur = spt.parent(cur);
        id = Some(store.push(id, cur, best_cost - spt.dist(cur)));
    }
    Resolution::Spliced(FoundPath {
        tail: id.expect("chain has at least the sidetrack head"),
        length: best_cost,
        vertex,
        suffix_len: tail_len,
    })
}

/// The sidetrack main loop: best-first over subspaces like `BestFirst`,
/// but with splice resolution instead of an unconditional `CompSP`, and
/// τ-bounded repair searches instead of unbounded ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sidetrack(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &mut PseudoTree,
    spt: &DenseDijkstra,
    sink: &mut dyn PathSink,
    alpha: f64,
    stats: &mut QueryStats,
) {
    debug_assert!(alpha > 1.0, "α must exceed 1 (got {alpha})");
    let mut q = std::mem::take(&mut scratch.para_heap);
    q.clear();
    let lb0 = comp_lb(ctx, scratch, tree, ROOT, &mut |v| spt.dist(v), stats);
    if lb0 != INFINITE_LENGTH {
        q.push(lb0, (ROOT, None));
    }
    let mut more = true;
    while more {
        if ctx.deadline.expired() {
            break;
        }
        let Some((key, (vertex, payload))) = q.pop() else {
            break;
        };
        stats.heap_pops += 1;
        match payload {
            Some(found) => {
                // Emission step, shared shape with the other paradigms:
                // divide, re-enqueue the affected subspaces at their exact
                // candidate bounds, deliver.
                let tick = scratch.trace.start();
                let emitted_len = found.length;
                divide_subspace(ctx, scratch, store, tree, found, stats);
                let affected = std::mem::take(&mut scratch.affected);
                for &v in &affected {
                    let lb = comp_lb(ctx, scratch, tree, v, &mut |x| spt.dist(x), stats);
                    if lb != INFINITE_LENGTH {
                        q.push(lb.max(emitted_len), (v, None));
                    } else {
                        stats.subspaces_skipped += 1;
                    }
                }
                scratch.affected = affected;
                more = emit_found(scratch, store, tree, found, false, sink);
                scratch.trace.record(Stage::DeviationRound, tick);
            }
            None => match resolve(ctx, scratch, store, tree, spt, vertex, stats) {
                Resolution::Spliced(f) => q.push(f.length, (vertex, Some(f))),
                Resolution::Empty => {
                    stats.subspaces_skipped += 1;
                }
                Resolution::Collision(lb) => {
                    stats.sidetrack_repairs += 1;
                    // §5-style iterative bounding for the rare repair: τ
                    // grows geometrically from the best knowledge at hand
                    // (this subspace's exact scan bound and the best
                    // other bound in the queue).
                    let base = key.max(lb).max(q.peek_key().unwrap_or(lb));
                    let tau = next_tau(base, alpha);
                    stats.tau_updates += 1;
                    stats.final_tau = stats.final_tau.max(tau);
                    match subspace_search(
                        ctx,
                        scratch,
                        store,
                        tree,
                        vertex,
                        &mut |v| match spt.dist(v) {
                            INFINITE_LENGTH => Estimate::Unreachable,
                            d => Estimate::Bound(d),
                        },
                        Some(tau),
                        stats,
                    ) {
                        SubspaceSearch::Found(f) => q.push(f.length, (vertex, Some(f))),
                        SubspaceSearch::Bounded => q.push(tau, (vertex, None)),
                        SubspaceSearch::Empty => {}
                        SubspaceSearch::Aborted => break,
                    }
                }
            },
        }
    }
    scratch.para_heap = q;
}

#[cfg(test)]
mod tests {
    use crate::{Algorithm, QueryEngine};
    use kpj_graph::{GraphBuilder, Length};

    /// Line 0-1-2-3 plus a dead-side spur 1-4 and an expensive escape
    /// 4-3: after emitting 0-1-2-3, the deviation at node 1 has best
    /// sidetrack (1,4) whose SPT suffix runs 4 → 1 → 2 → 3 — straight
    /// back through the prefix — forcing a repair search that finds
    /// 0-1-4-3.
    fn collision_graph() -> kpj_graph::Graph {
        let mut b = GraphBuilder::new(5);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(1, 2, 1).unwrap();
        b.add_bidirectional(2, 3, 1).unwrap();
        b.add_bidirectional(1, 4, 1).unwrap();
        b.add_bidirectional(4, 3, 10).unwrap();
        b.build()
    }

    #[test]
    fn splice_fast_path_matches_da_without_repairs() {
        // Paper-style graph where every deviation's SPT suffix is clean.
        let mut b = GraphBuilder::new(8);
        b.add_bidirectional(0, 7, 2).unwrap();
        b.add_bidirectional(7, 6, 3).unwrap();
        b.add_bidirectional(0, 2, 3).unwrap();
        b.add_bidirectional(2, 5, 3).unwrap();
        b.add_bidirectional(2, 6, 4).unwrap();
        b.add_bidirectional(2, 3, 5).unwrap();
        b.add_bidirectional(2, 4, 2).unwrap();
        b.add_bidirectional(4, 5, 2).unwrap();
        let g = b.build();
        let h = [3u32, 5, 6];
        let mut engine = QueryEngine::new(&g);
        let want = engine.query(Algorithm::Da, 0, &h, 10).unwrap();
        let got = engine.query(Algorithm::Sidetrack, 0, &h, 10).unwrap();
        assert_eq!(got.paths.lengths(), want.paths.lengths());
        assert!(got.stats.sidetrack_splices > 0);
        assert!(got.stats.sidetracks_scanned > 0);
        for p in &got.paths {
            p.validate(&g).unwrap();
            assert!(p.is_simple());
        }
    }

    #[test]
    fn prefix_collision_forces_repair_search() {
        let g = collision_graph();
        let mut engine = QueryEngine::new(&g);
        let r = engine.ksp(Algorithm::Sidetrack, 0, 3, 5).unwrap();
        let lens: Vec<Length> = r.paths.lengths();
        let want = engine.ksp(Algorithm::Da, 0, 3, 5).unwrap();
        assert_eq!(lens, want.paths.lengths());
        assert_eq!(lens[0], 3); // 0-1-2-3
        assert!(lens.contains(&12)); // 0-1-4-3, found by repair
        assert!(r.stats.sidetrack_repairs > 0, "{:?}", r.stats);
        assert!(r.stats.testlb_calls > 0);
        for p in &r.paths {
            p.validate(&g).unwrap();
            assert!(p.is_simple());
        }
    }

    #[test]
    fn trivial_prefix_path_is_a_zero_search_splice() {
        let g = collision_graph();
        let mut engine = QueryEngine::new(&g);
        // Source inside the target category: the zero-length path must be
        // resolved by the trivial branch (no sidetrack head at all).
        let r = engine.query(Algorithm::Sidetrack, 1, &[1, 3], 3).unwrap();
        assert_eq!(r.paths.path(0).nodes, [1]);
        assert_eq!(r.paths.path(0).length, 0);
        assert!(r.stats.sidetrack_splices > 0);
        let want = engine.query(Algorithm::Da, 1, &[1, 3], 3).unwrap();
        assert_eq!(r.paths.lengths(), want.paths.lengths());
    }

    #[test]
    fn exhausts_simple_paths_when_k_is_oversized() {
        // Exactly three simple 0→3 paths exist in the collision graph:
        // 0-1-2-3 (3), 0-1-4-3 (12), 0-1-2-... none via 2-3 twice — plus
        // 0-1-4-3 uses the expensive escape. Ask for far more.
        let g = collision_graph();
        let mut engine = QueryEngine::new(&g);
        let r = engine.ksp(Algorithm::Sidetrack, 0, 3, 50).unwrap();
        let want = engine.ksp(Algorithm::Da, 0, 3, 50).unwrap();
        assert_eq!(r.paths.lengths(), want.paths.lengths());
        assert!(r.paths.len() < 50, "finite simple-path supply");
    }

    #[test]
    fn multi_source_virtual_root_fanout_splices() {
        let g = collision_graph();
        let mut engine = QueryEngine::new(&g);
        let r = engine
            .query_multi(Algorithm::Sidetrack, &[0, 4], &[3], 6)
            .unwrap();
        let want = engine.query_multi(Algorithm::Da, &[0, 4], &[3], 6).unwrap();
        assert_eq!(r.paths.lengths(), want.paths.lengths());
        for p in &r.paths {
            assert!(p.source() == 0 || p.source() == 4);
            assert_eq!(p.destination(), 3);
        }
    }

    #[test]
    fn landmarks_do_not_change_sidetrack_answers() {
        use kpj_landmark::{LandmarkIndex, SelectionStrategy};
        let g = collision_graph();
        let idx = LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, 7);
        let mut plain = QueryEngine::new(&g);
        let mut lm = QueryEngine::new(&g).with_landmarks(&idx);
        let a = plain.ksp(Algorithm::Sidetrack, 0, 3, 5).unwrap();
        let b = lm.ksp(Algorithm::Sidetrack, 0, 3, 5).unwrap();
        // The engine ignores landmark bounds entirely — bit-identical
        // paths *and* work counters.
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.stats, b.stats);
    }
}
