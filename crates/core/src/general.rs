//! Top-k *general* shortest paths (walks — cycles allowed).
//!
//! The paper's related work distinguishes the (NP-harder-to-prune)
//! top-k **simple** path problem it solves from the classically easier
//! top-k **general** path problem [2, 12, 19], where paths may revisit
//! nodes. This module implements the general problem as a comparison
//! baseline: a recursive-enumeration-style best-first expansion (à la
//! Martins / Jiménez–Marzal, the practical cousin of Eppstein [12]).
//!
//! Core fact making walks easy: the prefix of the i-th shortest walk,
//! truncated at any node `v`, is itself among the i shortest walks to `v`
//! (no simplicity constraint breaks the exchange argument). Hence a
//! best-first expansion where each node is settled at most `k` times is
//! exact, in `O(k·m·log(k·n))`.
//!
//! Comparing [`top_k_walks`] with the simple-path engines (the
//! `ablation_simple_vs_general_k50` bench) is instructive in both
//! directions: the general problem is *asymptotically* easier (no
//! simplicity bookkeeping, no subspace machinery), but this textbook
//! unguided variant explores a k-fold Dijkstra ball — so on road networks
//! a well-indexed simple-path engine (`IterBoundI`) actually beats it,
//! while the *answers* diverge as soon as a cheap cycle undercuts the
//! k-th simple path. Both halves are the paper's point: simplicity is the
//! expensive constraint, and indexes are what buy it back.

use kpj_graph::{Graph, Length, NodeId, Path};
use kpj_heap::MinHeap;

/// The k shortest *walks* (node repetition allowed) from any of `sources`
/// to any of `targets`, in non-decreasing length order.
///
/// Conventions match the simple-path engines: a source that is itself a
/// target contributes the zero-length trivial walk; parallel edges
/// contribute their minimum weight (heavier twins can never appear in a
/// k-shortest answer that the lighter twin doesn't dominate); fewer than
/// `k` walks are returned only if the whole walk space is smaller
/// (possible only in cycle-free reachable subgraphs).
pub fn top_k_walks(g: &Graph, sources: &[NodeId], targets: &[NodeId], k: usize) -> Vec<Path> {
    let n = g.node_count();
    let mut results = Vec::with_capacity(k.min(1024));
    if k == 0 || n == 0 {
        return results;
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t as usize] = true;
    }
    if targets.is_empty() {
        return results;
    }

    // Walk tree: each entry is (end node, parent walk id or u32::MAX).
    let mut tree: Vec<(NodeId, u32)> = Vec::new();
    let mut heap: MinHeap<Length, u32> = MinHeap::new();
    // Settle budget per node (see module docs).
    let mut pops = vec![0u32; n];

    let mut seen_source = vec![false; n];
    for &s in sources {
        if s as usize >= n || seen_source[s as usize] {
            continue;
        }
        seen_source[s as usize] = true;
        tree.push((s, u32::MAX));
        heap.push(0, (tree.len() - 1) as u32);
    }

    while let Some((len, id)) = heap.pop() {
        let v = tree[id as usize].0;
        if pops[v as usize] >= k as u32 {
            continue;
        }
        pops[v as usize] += 1;
        if is_target[v as usize] {
            results.push(extract(&tree, id, len));
            if results.len() == k {
                break;
            }
        }
        let edges = g.out_edges(v);
        for (i, e) in edges.iter().enumerate() {
            // Node-sequence convention: expand each distinct head once,
            // at its minimum parallel-edge weight.
            if edges[..i].iter().any(|p| p.to == e.to) {
                continue;
            }
            if pops[e.to as usize] >= k as u32 {
                continue;
            }
            let w = edges[i..]
                .iter()
                .filter(|p| p.to == e.to)
                .map(|p| p.weight)
                .min()
                .expect("e itself");
            tree.push((e.to, id));
            heap.push(len.saturating_add(w as Length), (tree.len() - 1) as u32);
        }
    }
    results
}

fn extract(tree: &[(NodeId, u32)], id: u32, length: Length) -> Path {
    let mut nodes = Vec::new();
    let mut cur = id;
    loop {
        let (node, parent) = tree[cur as usize];
        nodes.push(node);
        if parent == u32::MAX {
            break;
        }
        cur = parent;
    }
    nodes.reverse();
    Path { nodes, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use kpj_graph::GraphBuilder;

    #[test]
    fn walks_on_a_dag_equal_simple_paths() {
        // Diamond DAG: walks cannot revisit anything anyway.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 2).unwrap();
        b.add_edge(0, 2, 3).unwrap();
        b.add_edge(2, 3, 4).unwrap();
        let g = b.build();
        let walks = top_k_walks(&g, &[0], &[3], 10);
        let simple = reference::top_k_lengths(&g, &[0], &[3], 10);
        let lens: Vec<Length> = walks.iter().map(|p| p.length).collect();
        assert_eq!(lens, simple);
    }

    #[test]
    fn cycles_produce_infinite_walk_families() {
        // 0 → 1 → 2 with a 1→0 back edge: walks 0-1-2, 0-1-0-1-2, …
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 0, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let g = b.build();
        let walks = top_k_walks(&g, &[0], &[2], 4);
        let lens: Vec<Length> = walks.iter().map(|p| p.length).collect();
        assert_eq!(lens, vec![2, 4, 6, 8]);
        assert_eq!(walks[1].nodes, vec![0, 1, 0, 1, 2]);
        // The simple-path answer stops after one path.
        assert_eq!(reference::top_k_lengths(&g, &[0], &[2], 4), vec![2]);
    }

    #[test]
    fn walk_lengths_lower_bound_simple_path_lengths() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3..10u32);
            let mut b = GraphBuilder::new(n as usize);
            for _ in 0..n * 3 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    b.add_edge(u, v, rng.gen_range(1..20)).unwrap();
                }
            }
            let g = b.build();
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            let walks = top_k_walks(&g, &[s], &[t], 6);
            let simple = reference::top_k_lengths(&g, &[s], &[t], 6);
            // Walks are a superset of simple paths: pointwise ≤.
            for (i, sl) in simple.iter().enumerate() {
                assert!(
                    walks.len() > i && walks[i].length <= *sl,
                    "seed {seed}: walk[{i}] vs simple {sl}"
                );
            }
            // And the shortest walk is the shortest path.
            if let (Some(w), Some(p)) = (walks.first(), simple.first()) {
                assert_eq!(w.length, *p);
            }
            for w in &walks {
                w.validate(&g).unwrap();
                assert_eq!(w.source(), s);
                assert_eq!(w.destination(), t);
            }
        }
    }

    #[test]
    fn matches_hop_limited_enumeration() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        // With all weights ≥ 1, any walk of > H hops has length > H, so
        // the algorithm's results with length ≤ H must exactly match the
        // ≤ H-hop enumeration's results with length ≤ H.
        const H: usize = 9;
        for seed in 100..130u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(2..6u32);
            let mut b = GraphBuilder::new(n as usize);
            for _ in 0..n * 2 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    b.add_edge(u, v, rng.gen_range(1..4)).unwrap();
                }
            }
            let g = b.build();
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);

            // Exact counting DP over (hop, node, length): the number of
            // distinct walks of each length, for ≤ H hops. Lengths are
            // bounded by 3·H, so the table stays tiny.
            let max_len = 3 * H;
            let idx = |v: NodeId, l: usize| v as usize * (max_len + 1) + l;
            let mut counts = vec![0u64; n as usize * (max_len + 1)];
            counts[idx(s, 0)] = 1;
            let mut all: Vec<Length> = Vec::new();
            for _hop in 0..=H {
                for l in 0..=max_len {
                    for _ in 0..counts[idx(t, l)] {
                        all.push(l as Length);
                    }
                }
                let mut next = vec![0u64; counts.len()];
                for v in g.nodes() {
                    for l in 0..=max_len {
                        let c = counts[idx(v, l)];
                        if c == 0 {
                            continue;
                        }
                        let edges = g.out_edges(v);
                        for (i, e) in edges.iter().enumerate() {
                            // Distinct heads once, at min parallel weight.
                            if edges[..i].iter().any(|p| p.to == e.to) {
                                continue;
                            }
                            let w = g.edge_weight(v, e.to).expect("edge exists") as usize;
                            let nl = l + w;
                            if nl <= max_len {
                                next[idx(e.to, nl)] += c;
                            }
                        }
                    }
                }
                counts = next;
            }
            all.sort_unstable();

            let walks = top_k_walks(&g, &[s], &[t], 12);
            let got: Vec<Length> = walks
                .iter()
                .map(|p| p.length)
                .filter(|&l| l <= H as Length)
                .collect();
            let want: Vec<Length> = all
                .iter()
                .copied()
                .filter(|&l| l <= H as Length)
                .take(got.len().max(12))
                .collect();
            assert_eq!(got, want[..got.len().min(want.len())], "seed {seed}");
        }
    }

    #[test]
    fn trivial_multi_source_and_empty_cases() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 5).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let g = b.build();
        // Multi-source picks the nearer one first.
        let walks = top_k_walks(&g, &[0, 1], &[2], 2);
        assert_eq!(walks[0].nodes, vec![1, 2]);
        assert_eq!(walks[1].nodes, vec![0, 2]);
        // Source that is a target: trivial walk first.
        let walks = top_k_walks(&g, &[2], &[2], 2);
        assert_eq!(walks[0].length, 0);
        // Empty inputs.
        assert!(top_k_walks(&g, &[0], &[], 3).is_empty());
        assert!(top_k_walks(&g, &[0], &[2], 0).is_empty());
        // Unreachable.
        assert!(top_k_walks(&g, &[2], &[0], 3).is_empty());
    }

    #[test]
    fn parallel_edges_use_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9).unwrap();
        b.add_edge(0, 1, 3).unwrap();
        let g = b.build();
        let walks = top_k_walks(&g, &[0], &[1], 3);
        assert_eq!(walks.len(), 1);
        assert_eq!(walks[0].length, 3);
    }
}
