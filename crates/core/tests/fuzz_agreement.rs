//! Randomized cross-validation: every algorithm × {with, without landmarks}
//! must return exactly the brute-force top-k length multiset on hundreds of
//! random graphs, with simple, valid paths in non-decreasing order.

use kpj_core::{reference, Algorithm, QueryEngine};
use kpj_graph::{Graph, GraphBuilder, Length, NodeId};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_graph(rng: &mut SmallRng, n: u32, m: usize, max_w: u32, bidir: bool) -> Graph {
    let mut b = GraphBuilder::new(n as usize);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let w = rng.gen_range(0..=max_w);
        if bidir {
            b.add_bidirectional(u, v, w).unwrap();
        } else {
            b.add_edge(u, v, w).unwrap();
        }
    }
    b.build()
}

fn check_query(
    g: &Graph,
    idx: &LandmarkIndex,
    sources: &[NodeId],
    targets: &[NodeId],
    k: usize,
    seed_info: &str,
) {
    let expect = reference::top_k_lengths(g, sources, targets, k);
    for with_lm in [false, true] {
        let mut engine = QueryEngine::new(g);
        if with_lm {
            engine = engine.with_landmarks(idx);
        }
        for alg in Algorithm::ALL {
            let r = engine.query_multi(alg, sources, targets, k).unwrap();
            let got: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
            assert_eq!(
                got,
                expect,
                "{} landmarks={with_lm} {seed_info} sources={sources:?} targets={targets:?} k={k}",
                alg.name()
            );
            // Structural invariants.
            let mut seen = std::collections::HashSet::new();
            for p in &r.paths {
                p.validate(g)
                    .unwrap_or_else(|e| panic!("{} {seed_info}: {e}", alg.name()));
                assert!(
                    p.is_simple(),
                    "{} {seed_info}: non-simple {:?}",
                    alg.name(),
                    p.nodes
                );
                assert!(sources.contains(&p.source()), "{} {seed_info}", alg.name());
                assert!(
                    targets.contains(&p.destination()),
                    "{} {seed_info}",
                    alg.name()
                );
                assert!(
                    seen.insert(p.nodes.to_vec()),
                    "{} {seed_info}: duplicate path",
                    alg.name()
                );
            }
            let lens = r.paths.lengths();
            assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

fn fuzz(seed_base: u64, rounds: usize, bidir: bool, max_w: u32) {
    for round in 0..rounds {
        let seed = seed_base + round as u64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2..=10u32);
        let m = rng.gen_range(1..=(n as usize * 3));
        let g = random_graph(&mut rng, n, m, max_w, bidir);
        let idx = LandmarkIndex::build(&g, 3.min(n as usize), SelectionStrategy::Farthest, seed);

        let n_targets = rng.gen_range(1..=3.min(n)) as usize;
        let targets: Vec<NodeId> = (0..n_targets).map(|_| rng.gen_range(0..n)).collect();
        let source = rng.gen_range(0..n);
        let k = rng.gen_range(1..=8usize);
        let info = format!("seed={seed}");
        check_query(&g, &idx, &[source], &targets, k, &info);

        // Every other round, also a GKPJ query.
        if round % 2 == 0 {
            let n_sources = rng.gen_range(2..=3.min(n)) as usize;
            let sources: Vec<NodeId> = (0..n_sources).map(|_| rng.gen_range(0..n)).collect();
            check_query(&g, &idx, &sources, &targets, k, &info);
        }
    }
}

#[test]
fn agrees_with_brute_force_on_sparse_directed_graphs() {
    fuzz(1_000, 150, false, 20);
}

#[test]
fn agrees_with_brute_force_on_bidirectional_graphs() {
    fuzz(2_000, 150, true, 20);
}

#[test]
fn agrees_with_brute_force_with_zero_weights() {
    fuzz(3_000, 100, false, 2);
}

#[test]
fn agrees_with_brute_force_on_dense_graphs() {
    for round in 0..60u64 {
        let seed = 4_000 + round;
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(4..=8u32);
        let g = random_graph(&mut rng, n, n as usize * 6, 10, false);
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Random, seed);
        let targets: Vec<NodeId> = vec![rng.gen_range(0..n), rng.gen_range(0..n)];
        let source = rng.gen_range(0..n);
        check_query(&g, &idx, &[source], &targets, 12, &format!("seed={seed}"));
    }
}

#[test]
fn large_k_exhausts_all_paths() {
    // Ask for far more paths than exist; every algorithm must terminate
    // and return the complete enumeration.
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(9_000 + seed);
        let n = rng.gen_range(2..=7u32);
        let g = random_graph(&mut rng, n, n as usize * 2, 9, true);
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, seed);
        let source = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        check_query(
            &g,
            &idx,
            &[source],
            &[target],
            10_000,
            &format!("seed={seed}"),
        );
    }
}
