//! Deadline expiry at *arbitrary* interior points of a query.
//!
//! The existing non-poisoning tests use an already-expired deadline, which
//! dies at the first poll — before any deviation subspace exists. This
//! ramp sweeps exponentially growing budgets (1 ns … ~1 ms) over a query
//! large enough that expiry lands mid-settle, mid-subspace-creation, and
//! mid-assembly on different steps. Wherever it lands, the contract is the
//! same: either `DeadlineExceeded`, or the exact unbounded answer — and
//! the engine scratch must be reusable immediately afterwards.

use std::time::Duration;

use kpj_core::{Algorithm, Deadline, QueryEngine, QueryError};
use kpj_graph::{Graph, GraphBuilder, Length, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A connected lattice-with-chords graph big enough that deviation
/// algorithms do hundreds of subspace searches for k = 16.
fn ramp_graph(n: u32, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cols = (n as f64).sqrt().ceil() as u32;
    let mut b = GraphBuilder::new(n as usize);
    for v in 0..n {
        if v % cols + 1 < cols && v + 1 < n {
            b.add_bidirectional(v, v + 1, rng.gen_range(1..=100))
                .unwrap();
        }
        if v + cols < n {
            b.add_bidirectional(v, v + cols, rng.gen_range(1..=100))
                .unwrap();
        }
    }
    // Chords create many near-optimal alternatives → deep deviation work.
    for _ in 0..n / 4 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_bidirectional(u, v, rng.gen_range(50..=300)).unwrap();
        }
    }
    b.build()
}

#[test]
fn deadline_can_expire_anywhere_without_poisoning_scratch() {
    let g = ramp_graph(300, 77);
    let sources: Vec<NodeId> = vec![0];
    let targets: Vec<NodeId> = vec![297, 298, 299];
    let k = 16;

    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let want: Vec<Length> = engine
            .query_multi(alg, &sources, &targets, k)
            .unwrap()
            .paths
            .iter()
            .map(|p| p.length)
            .collect();
        assert_eq!(want.len(), k, "{}: graph too small for ramp", alg.name());

        let mut expired = 0u32;
        let budgets =
            std::iter::once(Duration::ZERO).chain((0..21).map(|i| Duration::from_nanos(1 << i)));
        for budget in budgets {
            match engine.query_multi_deadline(alg, &sources, &targets, k, Deadline::after(budget)) {
                Err(QueryError::DeadlineExceeded) => expired += 1,
                Err(other) => panic!("{} budget {budget:?}: {other:?}", alg.name()),
                Ok(r) => {
                    let got: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
                    assert_eq!(
                        got,
                        want,
                        "{} budget {budget:?}: partial answer",
                        alg.name()
                    );
                }
            }
            // Scratch hygiene after *every* interruption point: the very
            // next unbounded query must be exact.
            let retry: Vec<Length> = engine
                .query_multi(alg, &sources, &targets, k)
                .unwrap()
                .paths
                .iter()
                .map(|p| p.length)
                .collect();
            assert_eq!(
                retry,
                want,
                "{} budget {budget:?}: scratch poisoned",
                alg.name()
            );
        }
        // The 1 ns end of the ramp cannot complete a 300-node k=16 query;
        // if nothing expired the ramp is not exercising interior polls.
        assert!(expired > 0, "{}: no budget in the ramp expired", alg.name());
    }
}

#[test]
fn par_deadline_can_expire_anywhere_without_poisoning_round_state() {
    // The parallel variant of the ramp: with `par_threads >= 2`, expiry
    // can land *mid round-batch* — some tasks of a fan-out abort while
    // sibling tasks complete into worker-local arenas. The merge discards
    // everything from the first abort on, so the invariant is identical
    // to the sequential ramp: `DeadlineExceeded` or the exact answer,
    // and the next unbounded query on the same engine must be
    // bit-identical to a sequential baseline (no chain left in a worker
    // arena, no heap entry from a cut round, no stale round_batch).
    let g = ramp_graph(300, 79);
    let sources: Vec<NodeId> = vec![0];
    let targets: Vec<NodeId> = vec![297, 298, 299];
    let k = 16;

    let mut seq = QueryEngine::new(&g).with_par_threads(0);
    for threads in [2usize, 4] {
        let mut engine = QueryEngine::new(&g).with_par_threads(threads);
        for alg in Algorithm::ALL {
            let want = seq.query_multi(alg, &sources, &targets, k).unwrap();
            assert_eq!(
                want.paths.len(),
                k,
                "{}: graph too small for ramp",
                alg.name()
            );

            let mut expired = 0u32;
            let budgets = std::iter::once(Duration::ZERO)
                .chain((0..21).map(|i| Duration::from_nanos(1 << i)));
            for budget in budgets {
                match engine.query_multi_deadline(
                    alg,
                    &sources,
                    &targets,
                    k,
                    Deadline::after(budget),
                ) {
                    Err(QueryError::DeadlineExceeded) => expired += 1,
                    Err(other) => {
                        panic!("{} par={threads} budget {budget:?}: {other:?}", alg.name())
                    }
                    Ok(r) => assert_eq!(
                        r.paths,
                        want.paths,
                        "{} par={threads} budget {budget:?}: partial answer",
                        alg.name()
                    ),
                }
                // Round-state hygiene after every interruption point: the
                // very next unbounded parallel query must match the
                // sequential baseline bit for bit.
                let retry = engine.query_multi(alg, &sources, &targets, k).unwrap();
                assert_eq!(
                    retry.paths,
                    want.paths,
                    "{} par={threads} budget {budget:?}: round state poisoned",
                    alg.name()
                );
            }
            assert!(
                expired > 0,
                "{} par={threads}: no budget in the ramp expired",
                alg.name()
            );
        }
    }
}

#[test]
fn zero_timeout_interleaved_with_parallel_queries_stays_exact() {
    // The serving layer's `timeout_ms=0` maps to an already-expired
    // deadline. Interleave a burst of those with unbounded queries on a
    // parallel engine: every zero-budget attempt must fail cleanly and
    // every unbounded query in between must still be exact — the exact
    // combination (`timeout_ms=0` × `KPJ_PAR_THREADS>1`) a retry storm
    // against a saturated service produces.
    let g = ramp_graph(200, 80);
    let sources: Vec<NodeId> = vec![0, 1];
    let targets: Vec<NodeId> = vec![197, 198, 199];
    let k = 12;

    let mut seq = QueryEngine::new(&g).with_par_threads(0);
    let mut engine = QueryEngine::new(&g).with_par_threads(3);
    for alg in Algorithm::ALL {
        let want = seq.query_multi(alg, &sources, &targets, k).unwrap();
        assert_eq!(want.paths.len(), k, "{}", alg.name());
        // Warm the parallel engine (spawns the pool, grows scratch).
        let warm = engine.query_multi(alg, &sources, &targets, k).unwrap();
        assert_eq!(warm.paths, want.paths, "{}: warm-up diverged", alg.name());

        for round in 0..8u32 {
            let err = engine
                .query_multi_deadline(alg, &sources, &targets, k, Deadline::after(Duration::ZERO))
                .unwrap_err();
            assert_eq!(
                err,
                QueryError::DeadlineExceeded,
                "{} round {round}",
                alg.name()
            );
            let r = engine.query_multi(alg, &sources, &targets, k).unwrap();
            assert_eq!(
                r.paths,
                want.paths,
                "{} round {round}: zero-timeout attempt poisoned the engine",
                alg.name()
            );
        }
    }
}

#[test]
fn expiry_during_subspace_creation_is_observable() {
    // Deviation algorithms (DA / DA-SPT) create one subspace per prefix of
    // each emitted path; with a ramp of budgets, some runs must die *after*
    // the deviation loop started but *before* it finished — visible as
    // stats.subspaces_created strictly between 0 and the unbounded count.
    // The anytime visit API surfaces those stats even when the clock cuts
    // the query short.
    let g = ramp_graph(300, 78);
    let sources: Vec<NodeId> = vec![0];
    let targets: Vec<NodeId> = vec![299];
    let k = 24;

    for alg in [Algorithm::Da, Algorithm::DaSpt, Algorithm::DaSptPascoal] {
        let mut engine = QueryEngine::new(&g);
        let full = engine.query_multi(alg, &sources, &targets, k).unwrap();
        assert!(full.stats.subspaces_created > 1, "{}", alg.name());
        let want: Vec<Length> = full.paths.iter().map(|p| p.length).collect();

        // Where expiry lands is timing-dependent; repeat the ramp (bounded)
        // until one step is caught mid-deviation. Every step still checks
        // scratch hygiene, so retries add coverage rather than masking.
        let mut saw_partial_subspaces = false;
        for round in 0..50u32 {
            if saw_partial_subspaces {
                break;
            }
            for i in 0..24u32 {
                let d = Deadline::after(Duration::from_nanos(1u64 << i));
                let mut delivered = 0usize;
                let stats = engine
                    .query_multi_visit_deadline(alg, &sources, &targets, k, d, |_p| {
                        delivered += 1;
                        std::ops::ControlFlow::Continue(())
                    })
                    .unwrap();
                if delivered < full.paths.len()
                    && stats.subspaces_created > 0
                    && stats.subspaces_created < full.stats.subspaces_created
                {
                    saw_partial_subspaces = true;
                }
                // Engine stays correct after the interruption, wherever it
                // hit.
                let again: Vec<Length> = engine
                    .query_multi(alg, &sources, &targets, k)
                    .unwrap()
                    .paths
                    .iter()
                    .map(|p| p.length)
                    .collect();
                assert_eq!(
                    again,
                    want,
                    "{}: poisoned after ramp step {round}/{i}",
                    alg.name()
                );
            }
        }
        assert!(
            saw_partial_subspaces,
            "{}: ramp never caught expiry mid-subspace-creation",
            alg.name()
        );
    }
}
