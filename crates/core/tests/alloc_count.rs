//! Zero-allocation steady state: after one warm-up pass, a landmark-less
//! [`QueryEngine`] answers repeat KPJ queries through `query_multi_into`
//! without a single heap allocation, for every algorithm — *with the
//! structured tracer recording spans*. The `trace` feature is on by
//! default, so this test doubles as proof that span recording stays off
//! the heap; the trace-gated assertions below verify spans were actually
//! produced (the guarantee is not vacuous).
//!
//! Gated behind the `count-alloc` feature because it installs a counting
//! global allocator for the whole test process:
//!
//! ```text
//! cargo test -p kpj-core --features count-alloc --test alloc_count -- --test-threads=1
//! ```
//!
//! (`--test-threads=1` because the allocator counts process-wide: a
//! sibling test thread mid-window would register as a false positive.)
//!
//! Landmark-backed engines are excluded by design: the per-query landmark
//! bound tables (`LandmarkIndex::for_targets`, multi-source `SourceLb`)
//! still allocate — documented in DESIGN.md §9.
#![cfg(feature = "count-alloc")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use kpj_core::{Algorithm, Deadline, QueryEngine};
use kpj_graph::{GraphBuilder, NodeId, PathSet};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move and copy — it counts as an allocation.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

// The counter is process-global, so a measured window in one test would
// observe allocations made by another test running on a sibling thread.
// Every test holds this lock for its full duration (futex-based, no
// allocation); a poisoned lock is fine — the panicking test already failed.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` and return the number of allocations it made, retrying up to
/// three times and keeping the minimum. Even with tests serialized,
/// libtest's own main thread lazily initializes a thread-local channel
/// context (two small allocations) the first time it *blocks* waiting for
/// a test event — a one-shot, timing-dependent blip that is not ours.
/// A genuine per-query engine allocation fires on every attempt, so the
/// minimum still gates at zero.
fn min_alloc_delta(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = alloc_calls();
        f();
        best = best.min(alloc_calls() - before);
        if best == 0 {
            break;
        }
    }
    best
}

/// A deterministic lattice-with-chords graph: dense enough that every
/// algorithm exercises deviations, exclusion lists, bounded probes and
/// SPT growth for k = 12.
fn lattice(n: u32, cols: u32) -> kpj_graph::Graph {
    let mut b = GraphBuilder::new(n as usize);
    let mut w = 1u32;
    for v in 0..n {
        w = w.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        if v % cols + 1 < cols && v + 1 < n {
            b.add_bidirectional(v, v + 1, 1 + w % 97).unwrap();
        }
        if v + cols < n {
            b.add_bidirectional(v, v + cols, 1 + (w >> 8) % 97).unwrap();
        }
        // A chord every few nodes for path diversity.
        if v % 7 == 0 && v + 2 * cols + 1 < n {
            b.add_bidirectional(v, v + 2 * cols + 1, 40 + (w >> 16) % 211)
                .unwrap();
        }
    }
    b.build()
}

#[test]
fn warmed_engine_answers_queries_without_allocating() {
    let _serial = serial();
    let g = lattice(400, 20);
    let sources: Vec<NodeId> = vec![0, 1];
    let targets: Vec<NodeId> = vec![395, 397, 399];
    let k = 12;

    let mut engine = QueryEngine::new(&g);
    let mut out = PathSet::new();

    for alg in Algorithm::ALL {
        // Warm-up: grows every pooled buffer (arena, pseudo-tree pools,
        // heaps, timestamp maps, PathSet flat buffers) to steady state.
        engine
            .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
            .unwrap();
        assert_eq!(out.len(), k, "{}: warm-up under-filled", alg.name());
        let warm = out.lengths();

        // Steady state: repeat queries, zero allocations.
        let delta = min_alloc_delta(|| {
            engine
                .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
                .unwrap();
        });
        assert_eq!(
            delta,
            0,
            "{}: {delta} heap allocations in a warmed-up query",
            alg.name()
        );
        assert_eq!(out.lengths(), warm, "{}: answer drifted", alg.name());
        // The zero-allocation claim must hold *while tracing*: every
        // sampled query leaves a non-empty span trace behind.
        #[cfg(feature = "trace")]
        {
            let (older, newer) = engine.trace_spans();
            assert!(
                older.len() + newer.len() > 0,
                "{}: tracing was enabled but recorded no spans",
                alg.name()
            );
        }
    }
}

/// Draining the span ring between queries (what the service pool worker
/// does) is also allocation-free, and sampling can be retuned live
/// without touching the heap.
#[cfg(feature = "trace")]
#[test]
fn span_drain_and_sampling_are_allocation_free() {
    use kpj_obs::Stage;

    let _serial = serial();
    let g = lattice(300, 15);
    let mut engine = QueryEngine::new(&g);
    let mut out = PathSet::new();
    let mut histogram = [0u64; Stage::COUNT];
    engine
        .query_multi_into(
            Algorithm::IterBoundI,
            &[3],
            &[296],
            8,
            Deadline::none(),
            &mut out,
        )
        .unwrap();

    let mut seen = 0usize;
    let delta = min_alloc_delta(|| {
        engine.set_trace_sampling(1);
        engine
            .query_multi_into(
                Algorithm::IterBoundI,
                &[3],
                &[296],
                8,
                Deadline::none(),
                &mut out,
            )
            .unwrap();
        let (older, newer) = engine.trace_spans();
        seen = 0;
        for s in older.iter().chain(newer) {
            histogram[s.stage.index()] += s.dur_ns;
            seen += 1;
        }
        // Retune to "trace every third query" and run one untraced query.
        engine.set_trace_sampling(3);
        engine
            .query_multi_into(
                Algorithm::IterBoundI,
                &[3],
                &[296],
                8,
                Deadline::none(),
                &mut out,
            )
            .unwrap();
    });
    assert_eq!(delta, 0, "span drain allocated");
    assert!(seen > 0, "sampled query recorded no spans");
    assert!(histogram[Stage::SptBuild.index()] > 0 || histogram[Stage::SpSearch.index()] > 0);
}

/// The zero-allocation steady state survives intra-query parallelism:
/// with `par_threads = 4` the first query spawns the worker pool and
/// grows the per-worker scratch (searcher, path arena, result slots);
/// after that warm-up, repeat queries fan rounds out across the pool and
/// merge them back without a single heap allocation — on the query
/// thread *or* any worker (the counting allocator is process-wide).
#[test]
fn warmed_parallel_engine_is_allocation_free() {
    let _serial = serial();
    let g = lattice(400, 20);
    let sources: Vec<NodeId> = vec![0, 1];
    let targets: Vec<NodeId> = vec![395, 397, 399];
    let k = 12;

    let mut engine = QueryEngine::new(&g);
    engine.set_par_threads(4);
    let mut out = PathSet::new();

    for alg in Algorithm::ALL {
        engine
            .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
            .unwrap();
        assert_eq!(out.len(), k, "{}: warm-up under-filled", alg.name());
        let warm = out.lengths();

        let mut fanned = 0usize;
        let delta = min_alloc_delta(|| {
            let stats = engine
                .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
                .unwrap();
            fanned += stats.rounds_parallel;
        });
        assert_eq!(
            delta,
            0,
            "{}: {delta} heap allocations in a warmed-up parallel query",
            alg.name()
        );
        assert_eq!(out.lengths(), warm, "{}: answer drifted", alg.name());
        // Sidetrack is sequential by design: its fast path resolves a
        // subspace with zero search, so there is never a candidate batch
        // to fan out (documented carve-out, DESIGN.md §17). The gate
        // above still proves it allocation-free under `par_threads = 4`.
        if alg == Algorithm::Sidetrack {
            assert_eq!(fanned, 0, "Sidetrack must never fan out");
        } else {
            assert!(
                fanned > 0,
                "{}: no round fanned out — the parallel gate is vacuous",
                alg.name()
            );
        }
    }
}

#[test]
fn warmed_engine_single_source_ksp_is_allocation_free() {
    let _serial = serial();
    let g = lattice(300, 15);
    let mut engine = QueryEngine::new(&g);
    let mut out = PathSet::new();
    for alg in Algorithm::ALL {
        engine
            .query_multi_into(alg, &[3], &[296], 8, Deadline::none(), &mut out)
            .unwrap();
        let delta = min_alloc_delta(|| {
            engine
                .query_multi_into(alg, &[3], &[296], 8, Deadline::none(), &mut out)
                .unwrap();
        });
        assert_eq!(delta, 0, "{}", alg.name());
    }
}

/// A hub ring where consecutive hubs are joined by bidirectional
/// degree-2 corridors of `interior` nodes each, plus chords for path
/// diversity: `kpj_graph::reduce` contracts every corridor into twin
/// shortcuts, so answers must re-expand through the reduction.
fn corridor_ring(hubs: u32, interior: u32) -> kpj_graph::Graph {
    let n = hubs + hubs * interior;
    let mut b = GraphBuilder::new(n as usize);
    let mut w = 1u32;
    let mut fresh = hubs;
    for h in 0..hubs {
        let mut prev = h;
        for _ in 0..interior {
            w = w.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            b.add_bidirectional(prev, fresh, 1 + w % 53).unwrap();
            prev = fresh;
            fresh += 1;
        }
        w = w.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        b.add_bidirectional(prev, (h + 1) % hubs, 1 + w % 53)
            .unwrap();
        if h % 2 == 0 {
            b.add_bidirectional(h, (h + 3) % hubs, 60 + w % 97).unwrap();
        }
    }
    b.build()
}

/// The reduction layer's steady-state contract: a warmed engine serving a
/// reduced graph — every emitted path re-expanded through the pooled
/// expansion buffer back to original node ids — answers repeat queries
/// with **zero** heap allocations for every algorithm, exactly like the
/// unreduced engine. The final assertions prove the gate is not vacuous:
/// the reduction really contracted chains, and the measured answers
/// really contain re-expanded interior nodes.
#[test]
fn warmed_reduced_engine_expands_paths_without_allocating() {
    let _serial = serial();
    let hubs = 12u32;
    let g = corridor_ring(hubs, 6);
    let sources: Vec<NodeId> = vec![0, 1];
    let targets: Vec<NodeId> = vec![6, 7];
    let k = 10;

    let red = kpj_graph::reduce(&g, &sources, &targets);
    assert!(
        red.reduction.shortcut_count() > 0,
        "corridors did not contract — the reduced gate would be vacuous"
    );
    let rs: Vec<NodeId> = sources
        .iter()
        .map(|&v| red.reduction.to_reduced(v).unwrap())
        .collect();
    let rt: Vec<NodeId> = targets
        .iter()
        .map(|&v| red.reduction.to_reduced(v).unwrap())
        .collect();

    let mut engine = QueryEngine::new(&red.graph).with_reduction(&red.reduction);
    let mut out = PathSet::new();

    for alg in Algorithm::ALL {
        // Warm-up grows the pooled expansion buffer along with the usual
        // engine scratch.
        engine
            .query_multi_into(alg, &rs, &rt, k, Deadline::none(), &mut out)
            .unwrap();
        assert_eq!(out.len(), k, "{}: warm-up under-filled", alg.name());
        let warm = out.lengths();

        let delta = min_alloc_delta(|| {
            engine
                .query_multi_into(alg, &rs, &rt, k, Deadline::none(), &mut out)
                .unwrap();
        });
        assert_eq!(
            delta,
            0,
            "{}: {delta} heap allocations in a warmed-up reduced query",
            alg.name()
        );
        assert_eq!(out.lengths(), warm, "{}: answer drifted", alg.name());
        assert!(
            out.iter().any(|p| p.nodes.iter().any(|&v| v >= hubs)),
            "{}: no answer traversed a re-expanded chain interior",
            alg.name()
        );
    }
}

/// Cold-start contract of the v2 storage subsystem: a graph opened
/// zero-copy from a mmapped file (CSR sections — forward *and* reverse —
/// straight out of the page cache, proven by `is_fully_mapped`) drives
/// the very same zero-allocation steady state, with answers bit-identical
/// to the heap-built graph for every algorithm.
#[test]
fn warmed_engine_on_mmapped_graph_is_allocation_free() {
    let _serial = serial();
    let g = lattice(400, 20);
    let dir = std::env::temp_dir().join(format!("kpj-alloc-count-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lattice.kpj2");
    kpj_store::write_store_to_path(&path, &g, None, None, None, None).unwrap();
    let bundle = kpj_store::open_v2(&path).unwrap();
    assert!(
        bundle.graph.is_fully_mapped(),
        "CSR sections were parsed/copied instead of mmapped"
    );
    let mapped = bundle.graph;

    let sources: Vec<NodeId> = vec![0, 1];
    let targets: Vec<NodeId> = vec![395, 397, 399];
    let k = 12;
    let mut heap_engine = QueryEngine::new(&g);
    let mut engine = QueryEngine::new(&mapped);
    let mut heap_out = PathSet::new();
    let mut out = PathSet::new();

    for alg in Algorithm::ALL {
        heap_engine
            .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut heap_out)
            .unwrap();
        engine
            .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
            .unwrap();
        assert_eq!(out, heap_out, "{}: mmap-backed answer diverged", alg.name());

        let delta = min_alloc_delta(|| {
            engine
                .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
                .unwrap();
        });
        assert_eq!(
            delta,
            0,
            "{}: {delta} heap allocations in a warmed-up query on the mmapped graph",
            alg.name()
        );
        assert_eq!(out, heap_out, "{}: answer drifted", alg.name());
    }
    drop(engine);
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
