//! Zero-allocation steady state: after one warm-up pass, a landmark-less
//! [`QueryEngine`] answers repeat KPJ queries through `query_multi_into`
//! without a single heap allocation, for every algorithm.
//!
//! Gated behind the `count-alloc` feature because it installs a counting
//! global allocator for the whole test process:
//!
//! ```text
//! cargo test -p kpj-core --features count-alloc --test alloc_count
//! ```
//!
//! Landmark-backed engines are excluded by design: the per-query landmark
//! bound tables (`LandmarkIndex::for_targets`, multi-source `SourceLb`)
//! still allocate — documented in DESIGN.md §9.
#![cfg(feature = "count-alloc")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kpj_core::{Algorithm, Deadline, QueryEngine};
use kpj_graph::{GraphBuilder, NodeId, PathSet};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move and copy — it counts as an allocation.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A deterministic lattice-with-chords graph: dense enough that every
/// algorithm exercises deviations, exclusion lists, bounded probes and
/// SPT growth for k = 12.
fn lattice(n: u32, cols: u32) -> kpj_graph::Graph {
    let mut b = GraphBuilder::new(n as usize);
    let mut w = 1u32;
    for v in 0..n {
        w = w.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        if v % cols + 1 < cols && v + 1 < n {
            b.add_bidirectional(v, v + 1, 1 + w % 97).unwrap();
        }
        if v + cols < n {
            b.add_bidirectional(v, v + cols, 1 + (w >> 8) % 97).unwrap();
        }
        // A chord every few nodes for path diversity.
        if v % 7 == 0 && v + 2 * cols + 1 < n {
            b.add_bidirectional(v, v + 2 * cols + 1, 40 + (w >> 16) % 211)
                .unwrap();
        }
    }
    b.build()
}

#[test]
fn warmed_engine_answers_queries_without_allocating() {
    let g = lattice(400, 20);
    let sources: Vec<NodeId> = vec![0, 1];
    let targets: Vec<NodeId> = vec![395, 397, 399];
    let k = 12;

    let mut engine = QueryEngine::new(&g);
    let mut out = PathSet::new();

    for alg in Algorithm::ALL {
        // Warm-up: grows every pooled buffer (arena, pseudo-tree pools,
        // heaps, timestamp maps, PathSet flat buffers) to steady state.
        engine
            .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
            .unwrap();
        assert_eq!(out.len(), k, "{}: warm-up under-filled", alg.name());
        let warm = out.lengths();

        // Steady state: three repeats, zero allocations each.
        for round in 0..3 {
            let before = alloc_calls();
            engine
                .query_multi_into(alg, &sources, &targets, k, Deadline::none(), &mut out)
                .unwrap();
            let delta = alloc_calls() - before;
            assert_eq!(
                delta,
                0,
                "{} round {round}: {delta} heap allocations in a warmed-up query",
                alg.name()
            );
            assert_eq!(out.lengths(), warm, "{}: answer drifted", alg.name());
        }
    }
}

#[test]
fn warmed_engine_single_source_ksp_is_allocation_free() {
    let g = lattice(300, 15);
    let mut engine = QueryEngine::new(&g);
    let mut out = PathSet::new();
    for alg in Algorithm::ALL {
        engine
            .query_multi_into(alg, &[3], &[296], 8, Deadline::none(), &mut out)
            .unwrap();
        let before = alloc_calls();
        engine
            .query_multi_into(alg, &[3], &[296], 8, Deadline::none(), &mut out)
            .unwrap();
        assert_eq!(alloc_calls() - before, 0, "{}", alg.name());
    }
}
