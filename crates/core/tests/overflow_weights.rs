//! Adversarial edge weights near `u32::MAX`: long paths must accumulate
//! exactly in `Length` (u64) and never wrap past `INFINITE_LENGTH`, and
//! every algorithm must still agree with the brute-force reference.

use kpj_core::{reference, Algorithm, QueryEngine};
use kpj_graph::{Graph, GraphBuilder, Length, NodeId, Weight, INFINITE_LENGTH};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const W: Weight = u32::MAX;

fn check_against_reference(g: &Graph, sources: &[NodeId], targets: &[NodeId], k: usize) {
    let expect = reference::top_k_lengths(g, sources, targets, k);
    let idx = LandmarkIndex::build(g, 2.min(g.node_count()), SelectionStrategy::Farthest, 7);
    for with_lm in [false, true] {
        let mut engine = QueryEngine::new(g);
        if with_lm {
            engine = engine.with_landmarks(&idx);
        }
        for alg in Algorithm::ALL {
            let r = engine.query_multi(alg, sources, targets, k).unwrap();
            let got: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
            assert_eq!(
                got,
                expect,
                "{} landmarks={with_lm} sources={sources:?} targets={targets:?} k={k}",
                alg.name()
            );
            for p in &r.paths {
                p.validate(g).unwrap();
                assert!(p.length < INFINITE_LENGTH, "sentinel leaked: {p}");
            }
            let lens = r.paths.lengths();
            assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

#[test]
fn chain_of_max_weight_edges_accumulates_exactly() {
    // 0 → 1 → … → 6, every edge u32::MAX, plus an express arc 0 → 6.
    // The chain's length 6·(2^32−1) overflows any u32 accumulator and
    // must come out exact in u64.
    let n = 7u32;
    let mut b = GraphBuilder::new(n as usize);
    for v in 0..n - 1 {
        b.add_edge(v, v + 1, W).unwrap();
    }
    b.add_edge(0, n - 1, W).unwrap();
    let g = b.build();

    let expect = vec![W as Length, (n as Length - 1) * W as Length];
    assert_eq!(reference::top_k_lengths(&g, &[0], &[n - 1], 5), expect);
    check_against_reference(&g, &[0], &[n - 1], 5);
}

#[test]
fn ladder_with_max_weights_agrees_with_reference() {
    // A 2×6 bidirectional ladder: exponentially many simple paths, all
    // with lengths that are multiples of u32::MAX.
    let rungs = 6u32;
    let mut b = GraphBuilder::new(2 * rungs as usize);
    for i in 0..rungs {
        b.add_bidirectional(2 * i, 2 * i + 1, W).unwrap();
        if i + 1 < rungs {
            b.add_bidirectional(2 * i, 2 * (i + 1), W).unwrap();
            b.add_bidirectional(2 * i + 1, 2 * (i + 1) + 1, W).unwrap();
        }
    }
    let g = b.build();
    check_against_reference(&g, &[0], &[2 * rungs - 1], 12);
    check_against_reference(&g, &[0, 1], &[2 * rungs - 2, 2 * rungs - 1], 8);
}

#[test]
fn random_graphs_with_adversarial_weights_agree() {
    // Weights drawn from the top of the u32 range on random topologies:
    // any relaxation site still doing unchecked `+ e.weight as Length`
    // on a sentinel-valued distance wraps and shows up as disagreement.
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(41_000 + seed);
        let n = rng.gen_range(2..=8u32);
        let m = rng.gen_range(1..=(n as usize * 3));
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let w = rng.gen_range(W - 10..=W);
            if rng.gen_bool(0.5) {
                b.add_bidirectional(u, v, w).unwrap();
            } else {
                b.add_edge(u, v, w).unwrap();
            }
        }
        let g = b.build();
        let source = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        let k = rng.gen_range(1..=8usize);
        check_against_reference(&g, &[source], &[target], k);
    }
}

#[test]
fn unreachable_targets_yield_no_phantom_paths() {
    // Two components joined by nothing: saturated arithmetic must not
    // turn INFINITE_LENGTH into a finite (wrapped) distance.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, W).unwrap();
    b.add_edge(2, 3, W).unwrap();
    let g = b.build();
    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let r = engine.query_multi(alg, &[0], &[3], 4).unwrap();
        assert!(r.paths.is_empty(), "{}: phantom path to 3", alg.name());
    }
}
