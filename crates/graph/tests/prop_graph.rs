//! Property-based tests for the graph substrate: CSR construction against
//! a naive adjacency model, I/O roundtrips, and scratch-structure
//! invariants, over proptest-generated inputs.

use kpj_graph::scratch::{TimestampedMap, TimestampedSet};
use kpj_graph::{io, GraphBuilder, NodeId, Weight};
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    n: u32,
    edges: Vec<(u32, u32, u32)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1..40u32).prop_flat_map(|n| {
        vec((0..n, 0..n, 0..1000u32), 0..120).prop_map(move |edges| Spec { n, edges })
    })
}

proptest! {
    #[test]
    fn csr_matches_model(s in spec()) {
        let mut b = GraphBuilder::new(s.n as usize);
        for &(u, v, w) in &s.edges {
            b.add_edge(u, v, w).unwrap();
        }
        let g = b.build();
        prop_assert_eq!(g.edge_count(), s.edges.len());

        // Model: multiset adjacency in both directions.
        let mut out_model: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); s.n as usize];
        let mut in_model: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); s.n as usize];
        for &(u, v, w) in &s.edges {
            out_model[u as usize].push((v, w));
            in_model[v as usize].push((u, w));
        }
        for u in g.nodes() {
            let mut got: Vec<(NodeId, Weight)> =
                g.out_edges(u).iter().map(|e| (e.to, e.weight)).collect();
            got.sort_unstable();
            out_model[u as usize].sort_unstable();
            prop_assert_eq!(&got, &out_model[u as usize], "out({})", u);

            let mut got: Vec<(NodeId, Weight)> =
                g.in_edges(u).iter().map(|e| (e.to, e.weight)).collect();
            got.sort_unstable();
            in_model[u as usize].sort_unstable();
            prop_assert_eq!(&got, &in_model[u as usize], "in({})", u);
        }
    }

    #[test]
    fn dimacs_roundtrip_random(s in spec()) {
        let mut b = GraphBuilder::new(s.n as usize);
        for &(u, v, w) in &s.edges {
            b.add_edge(u, v, w).unwrap();
        }
        let g = b.build();
        let mut buf = Vec::new();
        io::write_dimacs_gr(&g, &mut buf).unwrap();
        let g2 = io::read_dimacs_gr(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        for u in g.nodes() {
            prop_assert_eq!(g.out_edges(u), g2.out_edges(u));
        }
    }

    #[test]
    fn binary_roundtrip_random(s in spec()) {
        let mut b = GraphBuilder::new(s.n as usize);
        for &(u, v, w) in &s.edges {
            b.add_edge(u, v, w).unwrap();
        }
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(buf.as_slice()).unwrap();
        for u in g.nodes() {
            // Out-adjacency order is canonical (CSR order is serialized);
            // in-adjacency is rebuilt and only multiset-equal.
            prop_assert_eq!(g.out_edges(u), g2.out_edges(u));
            let sorted = |edges: &[kpj_graph::EdgeRef]| {
                let mut v: Vec<(NodeId, Weight)> = edges.iter().map(|e| (e.to, e.weight)).collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(sorted(g.in_edges(u)), sorted(g2.in_edges(u)));
        }
    }

    #[test]
    fn timestamped_set_matches_hashset(
        ops in vec((0..3u8, 0..50usize), 1..300),
    ) {
        let mut ts = TimestampedSet::new(50);
        let mut model = std::collections::HashSet::new();
        for (op, key) in ops {
            match op {
                0 => {
                    prop_assert_eq!(ts.insert(key), model.insert(key));
                }
                1 => {
                    prop_assert_eq!(ts.remove(key), model.remove(&key));
                }
                _ => {
                    ts.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(ts.contains(key), model.contains(&key));
        }
    }

    #[test]
    fn timestamped_map_matches_hashmap(
        ops in vec((0..2u8, 0..30usize, 0..1000u64), 1..300),
    ) {
        let mut tm = TimestampedMap::new(30, u64::MAX);
        let mut model = std::collections::HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    tm.set(key, value);
                    model.insert(key, value);
                }
                _ => {
                    tm.reset();
                    model.clear();
                }
            }
            prop_assert_eq!(tm.get(key), model.get(&key).copied().unwrap_or(u64::MAX));
            prop_assert_eq!(tm.is_set(key), model.contains_key(&key));
        }
    }

    #[test]
    fn path_validation_agrees_with_construction(s in spec(), walk_len in 1..8usize) {
        let mut b = GraphBuilder::new(s.n as usize);
        for &(u, v, w) in &s.edges {
            b.add_edge(u, v, w).unwrap();
        }
        let g = b.build();
        // Build a genuine walk greedily; its Path must validate.
        let mut nodes = vec![0u32];
        let mut length = 0u64;
        for _ in 0..walk_len {
            let u = *nodes.last().unwrap();
            // Deterministic: smallest-weight outgoing edge.
            let Some(e) = g.out_edges(u).iter().min_by_key(|e| (e.weight, e.to)) else { break };
            nodes.push(e.to);
            // Validation recomputes with the *minimum* parallel weight.
            length += g.edge_weight(u, e.to).unwrap() as u64;
        }
        let p = kpj_graph::Path { nodes, length };
        prop_assert!(p.validate(&g).is_ok());
    }
}
