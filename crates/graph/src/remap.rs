//! Node id permutations recorded by the locality reordering pass.
//!
//! The offline BFS reorder (see `kpj-store`) renumbers nodes so that
//! adjacent nodes sit close together in the CSR arrays. The permutation is
//! stored alongside the graph so that wire-level ("external") ids — the ids
//! the original dataset used — can keep working: requests are translated
//! external → internal at the service boundary, and answer paths are
//! translated back internal → external before rendering.

use crate::error::GraphError;
use crate::section::SectionBuf;
use crate::types::NodeId;

/// A validated bijection between external (original) and internal
/// (reordered) node ids.
///
/// `old_to_new[external] = internal` and `new_to_old[internal] = external`.
/// Construction proves the two arrays are mutual inverses, so lookups are
/// infallible apart from range checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRemap {
    old_to_new: SectionBuf<u32>,
    new_to_old: SectionBuf<u32>,
}

impl NodeRemap {
    /// Build from the forward map, deriving the inverse.
    ///
    /// Fails if `old_to_new` is not a permutation of `0..n`.
    pub fn from_old_to_new(old_to_new: Vec<u32>) -> Result<Self, GraphError> {
        let n = old_to_new.len();
        let mut new_to_old = vec![u32::MAX; n];
        for (old, &new) in old_to_new.iter().enumerate() {
            let slot = new_to_old
                .get_mut(new as usize)
                .ok_or_else(|| invalid(format!("remap target {new} out of range for n={n}")))?;
            if *slot != u32::MAX {
                return Err(invalid(format!("remap target {new} assigned twice")));
            }
            *slot = old as u32;
        }
        Ok(NodeRemap {
            old_to_new: old_to_new.into(),
            new_to_old: new_to_old.into(),
        })
    }

    /// Build from both directions (e.g. two mapped file sections), verifying
    /// they are mutual inverses without allocating.
    pub fn from_sections(
        old_to_new: SectionBuf<u32>,
        new_to_old: SectionBuf<u32>,
    ) -> Result<Self, GraphError> {
        let n = old_to_new.len();
        if new_to_old.len() != n {
            return Err(invalid(format!(
                "remap arrays disagree on length: {} vs {}",
                n,
                new_to_old.len()
            )));
        }
        // `old_to_new[new_to_old[i]] == i` for all i proves new_to_old is
        // injective with image covered by old_to_new's domain; over equal
        // finite lengths that makes both bijections and mutual inverses.
        for (i, &old) in new_to_old.iter().enumerate() {
            let round_trip = old_to_new
                .get(old as usize)
                .copied()
                .ok_or_else(|| invalid(format!("remap entry {old} out of range for n={n}")))?;
            if round_trip as usize != i {
                return Err(invalid(format!(
                    "remap arrays are not mutual inverses at internal id {i}"
                )));
            }
        }
        Ok(NodeRemap {
            old_to_new,
            new_to_old,
        })
    }

    /// Number of nodes covered by the permutation.
    pub fn len(&self) -> usize {
        self.old_to_new.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// True if the permutation maps every id to itself.
    pub fn is_identity(&self) -> bool {
        self.old_to_new
            .iter()
            .enumerate()
            .all(|(i, &v)| i as u32 == v)
    }

    /// External (original) id → internal (reordered) id.
    #[inline]
    pub fn to_internal(&self, external: NodeId) -> Option<NodeId> {
        self.old_to_new.get(external as usize).copied()
    }

    /// Internal (reordered) id → external (original) id.
    ///
    /// # Panics
    /// Panics if `internal` is out of range — internal ids come from the
    /// engine, which never produces an id `≥ n`.
    #[inline]
    pub fn to_external(&self, internal: NodeId) -> NodeId {
        self.new_to_old[internal as usize]
    }

    /// The forward map as a slice (`[external] = internal`).
    pub fn old_to_new(&self) -> &[u32] {
        &self.old_to_new
    }

    /// The inverse map as a slice (`[internal] = external`).
    pub fn new_to_old(&self) -> &[u32] {
        &self.new_to_old
    }
}

fn invalid(message: String) -> GraphError {
    GraphError::Parse { line: 0, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_map_derives_inverse() {
        let r = NodeRemap::from_old_to_new(vec![2, 0, 1]).unwrap();
        assert_eq!(r.to_internal(0), Some(2));
        assert_eq!(r.to_internal(2), Some(1));
        assert_eq!(r.to_external(2), 0);
        assert_eq!(r.to_external(0), 1);
        assert_eq!(r.to_internal(3), None);
        assert!(!r.is_identity());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(NodeRemap::from_old_to_new(vec![0, 0]).is_err(), "duplicate");
        assert!(
            NodeRemap::from_old_to_new(vec![0, 5]).is_err(),
            "out of range"
        );
    }

    #[test]
    fn section_pair_must_be_mutual_inverses() {
        let ok = NodeRemap::from_sections(vec![1u32, 0].into(), vec![1u32, 0].into());
        assert!(ok.is_ok());
        let bad = NodeRemap::from_sections(vec![1u32, 0].into(), vec![0u32, 1].into());
        assert!(bad.is_err());
        let short = NodeRemap::from_sections(vec![0u32].into(), vec![0u32, 1].into());
        assert!(short.is_err());
        let oob = NodeRemap::from_sections(vec![0u32, 1].into(), vec![0u32, 9].into());
        assert!(oob.is_err());
    }

    #[test]
    fn identity_detection() {
        let r = NodeRemap::from_old_to_new((0..10).collect()).unwrap();
        assert!(r.is_identity());
    }
}
