//! Epoch-stamped scratch arrays.
//!
//! Every KPJ query runs many constrained graph searches (candidate-path
//! computations, `TestLB` probes, subspace A\*). Each search needs per-node
//! state (distance, visited flag, predecessor) but touches only a tiny
//! fraction of the nodes. Clearing an `O(n)` array per search — or hashing —
//! would dominate the runtime, so these structures attach an *epoch* to
//! every slot: bumping the epoch (an `O(1)` [`reset`](TimestampedMap::reset))
//! invalidates all stale entries at once.
//!
//! Epochs are `u32`; after `u32::MAX` resets the backing stamps are cleared
//! once, so correctness never depends on epochs not wrapping.

/// A set of `NodeId`-like `usize` keys with `O(1)` clear.
#[derive(Debug, Clone)]
pub struct TimestampedSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl TimestampedSet {
    /// A set over the key universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        TimestampedSet {
            stamp: vec![0; capacity],
            epoch: 1,
        }
    }

    /// Key universe size.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Empty the set in `O(1)`.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Insert `k`; returns true if it was not already present.
    #[inline]
    pub fn insert(&mut self, k: usize) -> bool {
        let fresh = self.stamp[k] != self.epoch;
        self.stamp[k] = self.epoch;
        fresh
    }

    /// Remove `k` (sets its stamp stale); returns true if it was present.
    #[inline]
    pub fn remove(&mut self, k: usize) -> bool {
        let present = self.stamp[k] == self.epoch;
        if present {
            self.stamp[k] = self.epoch.wrapping_sub(1);
        }
        present
    }

    /// True if `k` is in the set.
    #[inline]
    pub fn contains(&self, k: usize) -> bool {
        self.stamp[k] == self.epoch
    }
}

/// A map from `usize` keys to values of type `T` with `O(1)` clear.
///
/// Reading an absent key returns the default value supplied at
/// construction (e.g. an "infinite" distance), which is exactly the
/// initialization Dijkstra-style algorithms need.
#[derive(Debug, Clone)]
pub struct TimestampedMap<T: Copy> {
    values: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    default: T,
}

impl<T: Copy> TimestampedMap<T> {
    /// A map over keys `0..capacity` where absent keys read as `default`.
    pub fn new(capacity: usize, default: T) -> Self {
        TimestampedMap {
            values: vec![default; capacity],
            stamp: vec![0; capacity],
            epoch: 1,
            default,
        }
    }

    /// Key universe size.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Reset every key to the default in `O(1)`.
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Current value at `k` (the default if never written this epoch).
    #[inline]
    pub fn get(&self, k: usize) -> T {
        if self.stamp[k] == self.epoch {
            self.values[k]
        } else {
            self.default
        }
    }

    /// True if `k` was written this epoch.
    #[inline]
    pub fn is_set(&self, k: usize) -> bool {
        self.stamp[k] == self.epoch
    }

    /// Write `v` at `k`.
    #[inline]
    pub fn set(&mut self, k: usize, v: T) {
        self.values[k] = v;
        self.stamp[k] = self.epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_contains_clear() {
        let mut s = TimestampedSet::new(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        s.clear();
        assert!(!s.contains(3));
        assert!(s.insert(3));
    }

    #[test]
    fn set_remove() {
        let mut s = TimestampedSet::new(4);
        s.insert(1);
        assert!(s.remove(1));
        assert!(!s.contains(1));
        assert!(!s.remove(1));
        assert!(s.insert(1));
    }

    #[test]
    fn map_defaults_and_reset() {
        let mut m = TimestampedMap::new(5, u64::MAX);
        assert_eq!(m.get(2), u64::MAX);
        assert!(!m.is_set(2));
        m.set(2, 7);
        assert_eq!(m.get(2), 7);
        assert!(m.is_set(2));
        m.reset();
        assert_eq!(m.get(2), u64::MAX);
        assert!(!m.is_set(2));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut s = TimestampedSet::new(2);
        s.insert(0);
        // Force the epoch to the brink and clear across the wrap.
        s.epoch = u32::MAX;
        s.insert(1);
        s.clear();
        assert!(!s.contains(0));
        assert!(!s.contains(1));
        s.insert(0);
        assert!(s.contains(0));

        let mut m = TimestampedMap::new(2, -1i64);
        m.set(0, 5);
        m.epoch = u32::MAX;
        m.set(1, 6);
        m.reset();
        assert_eq!(m.get(0), -1);
        assert_eq!(m.get(1), -1);
    }
}
