//! Compressed-sparse-row graph representation with a reverse view.

use crate::error::GraphError;
use crate::section::SectionBuf;
use crate::types::{NodeId, Weight};

/// One outgoing (or incoming) edge as seen from a node.
///
/// `#[repr(C)]` pins the layout to `{to: u32, weight: u32}` little-endian
/// pairs so the v2 binary format (`kpj-store`) can reinterpret file bytes as
/// `[EdgeRef]` without a parse pass.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// The other endpoint: the head for out-edges, the tail for in-edges.
    pub to: NodeId,
    /// Weight of the edge.
    pub weight: Weight,
}

/// An immutable weighted directed graph in CSR form.
///
/// Both the forward adjacency (out-edges) and the reverse adjacency
/// (in-edges) are stored; the reverse view is required by the `DA-SPT`
/// baseline (full reverse SPT), by `PartialSPT` (Alg. 6 runs "in the reverse
/// graph of G") and by the `IterBound-SPTI` search (§5.3 "runs on the
/// reverse graph of G").
///
/// Construct via [`GraphBuilder`](crate::GraphBuilder) or the readers in
/// [`io`](crate::io).
#[derive(Debug, Clone)]
pub struct Graph {
    // Forward CSR.
    out_offsets: SectionBuf<u32>,
    out_edges: SectionBuf<EdgeRef>,
    // Reverse CSR.
    in_offsets: SectionBuf<u32>,
    in_edges: SectionBuf<EdgeRef>,
}

impl Graph {
    pub(crate) fn from_csr(
        out_offsets: Box<[u32]>,
        out_edges: Box<[EdgeRef]>,
        in_offsets: Box<[u32]>,
        in_edges: Box<[EdgeRef]>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(out_edges.len(), in_edges.len());
        Graph {
            out_offsets: out_offsets.into(),
            out_edges: out_edges.into(),
            in_offsets: in_offsets.into(),
            in_edges: in_edges.into(),
        }
    }

    /// Assemble a graph from externally produced CSR sections (owned or
    /// memory-mapped), validating every structural invariant the accessors
    /// rely on. This is the entry point the zero-copy v2 loader uses: the
    /// checks run in `O(n + m)` with **no allocation**, so a cold open stays
    /// a bounds-check sweep over the mapped bytes rather than a parse.
    ///
    /// Invariants enforced:
    /// * both offset arrays are non-empty, equal-length, start at 0, end at
    ///   the matching edge count, and are monotone non-decreasing;
    /// * the forward and reverse views agree on `m`;
    /// * every edge endpoint is `< n`.
    pub fn from_sections(
        out_offsets: SectionBuf<u32>,
        out_edges: SectionBuf<EdgeRef>,
        in_offsets: SectionBuf<u32>,
        in_edges: SectionBuf<EdgeRef>,
    ) -> Result<Self, GraphError> {
        let bad = |message: String| GraphError::Parse { line: 0, message };
        if out_offsets.is_empty() || in_offsets.is_empty() {
            return Err(bad("offset arrays must have n+1 entries".into()));
        }
        if out_offsets.len() != in_offsets.len() {
            return Err(bad(format!(
                "forward/reverse node counts disagree: {} vs {}",
                out_offsets.len() - 1,
                in_offsets.len() - 1
            )));
        }
        if out_edges.len() != in_edges.len() {
            return Err(bad(format!(
                "forward/reverse edge counts disagree: {} vs {}",
                out_edges.len(),
                in_edges.len()
            )));
        }
        let n = out_offsets.len() - 1;
        if n >= u32::MAX as usize || out_edges.len() > u32::MAX as usize {
            return Err(bad("graph too large for u32 id space".into()));
        }
        for (name, offsets, edges) in [
            ("out", &out_offsets, &out_edges),
            ("in", &in_offsets, &in_edges),
        ] {
            if offsets[0] != 0 {
                return Err(bad(format!("{name}_offsets[0] must be 0")));
            }
            if offsets[n] as usize != edges.len() {
                return Err(bad(format!(
                    "{name}_offsets end ({}) does not match edge count ({})",
                    offsets[n],
                    edges.len()
                )));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(bad(format!("{name}_offsets not monotone")));
            }
            if let Some(e) = edges.iter().find(|e| e.to as usize >= n) {
                return Err(GraphError::NodeOutOfRange {
                    node: e.to as u64,
                    node_count: n as u64,
                });
            }
        }
        Ok(Graph {
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
        })
    }

    /// True if every CSR array is backed by a memory mapping rather than
    /// heap memory (the zero-copy load property; asserted by tests).
    pub fn is_fully_mapped(&self) -> bool {
        self.out_offsets.is_mapped()
            && self.out_edges.is_mapped()
            && self.in_offsets.is_mapped()
            && self.in_edges.is_mapped()
    }

    /// The raw CSR sections `(out_offsets, out_edges, in_offsets, in_edges)`
    /// — what the v2 writer serializes.
    pub fn sections(&self) -> (&[u32], &[EdgeRef], &[u32], &[EdgeRef]) {
        (
            &self.out_offsets,
            &self.out_edges,
            &self.in_offsets,
            &self.in_edges,
        )
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Outgoing edges of `u` as a slice (empty if `u` has none).
    ///
    /// # Panics
    /// Panics if `u >= n`.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> &[EdgeRef] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Incoming edges of `u`: each [`EdgeRef::to`] is the *tail* of an edge
    /// `to → u` with the given weight.
    ///
    /// # Panics
    /// Panics if `u >= n`.
    #[inline]
    pub fn in_edges(&self, u: NodeId) -> &[EdgeRef] {
        let lo = self.in_offsets[u as usize] as usize;
        let hi = self.in_offsets[u as usize + 1] as usize;
        &self.in_edges[lo..hi]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_edges(u).len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_edges(u).len()
    }

    /// The weight of the minimum-weight edge `u → v`, if any such edge exists.
    ///
    /// Linear in `deg(u)`; used by tests and path validation, not by the hot
    /// query paths.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.out_edges(u)
            .iter()
            .filter(|e| e.to == v)
            .map(|e| e.weight)
            .min()
    }

    /// True if the graph contains at least one edge `u → v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Sum of all edge weights; useful as a finite upper bound on any simple
    /// path length (no simple path can use an edge twice).
    pub fn total_weight(&self) -> u64 {
        self.out_edges.iter().map(|e| e.weight as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 → 1 → 3, 0 → 2 → 3 and a back edge 3 → 0.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 2).unwrap();
        b.add_edge(0, 2, 3).unwrap();
        b.add_edge(2, 3, 4).unwrap();
        b.add_edge(3, 0, 5).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(0), 1);
    }

    #[test]
    fn forward_and_reverse_views_agree() {
        let g = diamond();
        // Every out-edge (u, v, w) must appear as in-edge (v, u, w).
        for u in g.nodes() {
            for e in g.out_edges(u) {
                assert!(
                    g.in_edges(e.to)
                        .iter()
                        .any(|r| r.to == u && r.weight == e.weight),
                    "missing reverse edge for {u} -> {}",
                    e.to
                );
            }
        }
        let fwd: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let rev: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn edge_weight_picks_minimum_parallel_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9).unwrap();
        b.add_edge(0, 1, 4).unwrap();
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(4));
        assert_eq!(g.edge_weight(1, 0), None);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn total_weight_sums_all_edges() {
        assert_eq!(diamond().total_weight(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let g = GraphBuilder::new(3).build();
        for u in g.nodes() {
            assert!(g.out_edges(u).is_empty());
            assert!(g.in_edges(u).is_empty());
        }
    }

    #[test]
    fn from_sections_accepts_builder_output() {
        let g = diamond();
        let (oo, oe, io_, ie) = g.sections();
        let g2 = crate::Graph::from_sections(
            oo.to_vec().into(),
            oe.to_vec().into(),
            io_.to_vec().into(),
            ie.to_vec().into(),
        )
        .unwrap();
        for u in g.nodes() {
            assert_eq!(g.out_edges(u), g2.out_edges(u));
            assert_eq!(g.in_edges(u), g2.in_edges(u));
        }
        assert!(!g2.is_fully_mapped());
    }

    #[test]
    fn from_sections_rejects_broken_invariants() {
        use crate::{EdgeRef, Graph};
        let edge = |to, weight| EdgeRef { to, weight };
        // Non-monotone offsets.
        let r = Graph::from_sections(
            vec![0u32, 2, 1].into(),
            vec![edge(1, 1), edge(0, 1)].into(),
            vec![0u32, 1, 2].into(),
            vec![edge(1, 1), edge(0, 1)].into(),
        );
        assert!(r.is_err(), "non-monotone offsets accepted");
        // End offset disagrees with edge count.
        let r = Graph::from_sections(
            vec![0u32, 1, 3].into(),
            vec![edge(1, 1), edge(0, 1)].into(),
            vec![0u32, 1, 2].into(),
            vec![edge(1, 1), edge(0, 1)].into(),
        );
        assert!(r.is_err(), "bad end offset accepted");
        // Edge target out of range.
        let r = Graph::from_sections(
            vec![0u32, 1, 2].into(),
            vec![edge(1, 1), edge(7, 1)].into(),
            vec![0u32, 1, 2].into(),
            vec![edge(1, 1), edge(0, 1)].into(),
        );
        assert!(matches!(r, Err(crate::GraphError::NodeOutOfRange { .. })));
        // Forward/reverse disagree on m.
        let r = Graph::from_sections(
            vec![0u32, 1, 2].into(),
            vec![edge(1, 1), edge(0, 1)].into(),
            vec![0u32, 0, 1].into(),
            vec![edge(1, 1)].into(),
        );
        assert!(r.is_err(), "m mismatch accepted");
        // Empty offsets.
        let r = Graph::from_sections(vec![].into(), vec![].into(), vec![].into(), vec![].into());
        assert!(r.is_err(), "empty offsets accepted");
    }
}
