//! Paths: node sequences with cached lengths plus validation helpers.

use crate::csr::Graph;
use crate::types::{Length, NodeId};

/// A path `(v_1, …, v_l)` in a graph together with its length `ω(P)`.
///
/// Invariants are *not* enforced on construction (algorithms build paths
/// they know to be valid); use [`Path::validate`] in tests and at trust
/// boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// The node sequence, source first.
    pub nodes: Vec<NodeId>,
    /// Total weight of the constituent edges.
    pub length: Length,
}

impl Path {
    /// A single-node path of length zero.
    pub fn trivial(v: NodeId) -> Self {
        Path {
            nodes: vec![v],
            length: 0,
        }
    }

    /// Source node `v_1`.
    ///
    /// # Panics
    /// Panics on an empty node sequence (never produced by this workspace).
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has at least one node")
    }

    /// Destination node `v_l`.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Number of edges (`l − 1`).
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True if all nodes are distinct (Def. in §2: a *simple* path).
    pub fn is_simple(&self) -> bool {
        let mut seen = self.nodes.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// The reversed path (same length). Used by the `SPT_I` approach, whose
    /// search runs on the reverse graph and therefore produces reversed
    /// node sequences.
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        Path {
            nodes,
            length: self.length,
        }
    }

    /// Check that every consecutive pair is an edge of `g` and that the
    /// cached length equals the minimum-weight realization of the node
    /// sequence. Returns a description of the first violation.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        validate_nodes(g, &self.nodes, self.length)
    }

    /// Materialize the arena chain ending at `id` — the bridge that keeps
    /// `.kpjcase` replay files and the JSON wire format on owned paths
    /// while the hot layers traffic in [`PathId`](crate::PathId)s.
    pub fn materialize(store: &crate::PathStore, id: crate::PathId) -> Path {
        store.materialize(id)
    }
}

/// Shared validation core for [`Path`] and [`PathRef`](crate::PathRef).
pub(crate) fn validate_nodes(g: &Graph, nodes: &[NodeId], length: Length) -> Result<(), String> {
    if nodes.is_empty() {
        return Err("empty path".into());
    }
    let mut total: Length = 0;
    for w in nodes.windows(2) {
        match g.edge_weight(w[0], w[1]) {
            Some(wt) => {
                total = total
                    .checked_add(wt as Length)
                    .ok_or_else(|| format!("length overflow at edge {} -> {}", w[0], w[1]))?
            }
            None => return Err(format!("missing edge {} -> {}", w[0], w[1])),
        }
    }
    if total != length {
        return Err(format!("cached length {length} != recomputed {total}"));
    }
    Ok(())
}

impl std::fmt::Display for Path {
    /// `v0 -> v1 -> … (length L)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, " (length {})", self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 2).unwrap();
        b.add_edge(2, 3, 3).unwrap();
        b.build()
    }

    #[test]
    fn accessors() {
        let p = Path {
            nodes: vec![0, 1, 2],
            length: 3,
        };
        assert_eq!(p.source(), 0);
        assert_eq!(p.destination(), 2);
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(5);
        assert_eq!(p.source(), 5);
        assert_eq!(p.destination(), 5);
        assert_eq!(p.edge_count(), 0);
        assert!(p.is_simple());
    }

    #[test]
    fn simplicity() {
        assert!(Path {
            nodes: vec![0, 1, 2],
            length: 0
        }
        .is_simple());
        assert!(!Path {
            nodes: vec![0, 1, 0],
            length: 0
        }
        .is_simple());
    }

    #[test]
    fn validate_accepts_correct_path() {
        let g = line();
        let p = Path {
            nodes: vec![0, 1, 2, 3],
            length: 6,
        };
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn validate_rejects_missing_edge_and_bad_length() {
        let g = line();
        let p = Path {
            nodes: vec![0, 2],
            length: 1,
        };
        assert!(p.validate(&g).unwrap_err().contains("missing edge"));
        let p = Path {
            nodes: vec![0, 1],
            length: 9,
        };
        assert!(p.validate(&g).unwrap_err().contains("cached length"));
    }

    #[test]
    fn display_formats_chain() {
        let p = Path {
            nodes: vec![3, 1, 4],
            length: 9,
        };
        assert_eq!(p.to_string(), "3 -> 1 -> 4 (length 9)");
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let p = Path {
            nodes: vec![0, 1, 2],
            length: 3,
        };
        let r = p.reversed();
        assert_eq!(r.source(), 2);
        assert_eq!(r.destination(), 0);
        assert_eq!(r.length, 3);
    }
}
