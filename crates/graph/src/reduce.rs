//! Offline graph reduction: degree-2 chain contraction plus V_S/V_T
//! reachability pruning, after Yamane–Kitajima's GR approach (see
//! PAPERS.md). Road networks are dominated by corridors of degree-2
//! nodes that no *simple* path can branch off of; contracting each
//! corridor into a single shortcut edge — and dropping every node that
//! cannot lie on any `V_S → V_T` path — shrinks the search graph the
//! KPJ engines run on while preserving the exact top-k answer.
//!
//! ## Exactness
//!
//! The workspace's path semantics make two normalizations free:
//!
//! * **Parallel edges** collapse to their minimum-weight copy. Paths are
//!   deduplicated by node sequence and a hop's length is
//!   [`Graph::edge_weight`] (the min over copies), so no answer can
//!   observe a non-min copy.
//! * **Self-loops** are dropped: a simple path never uses one.
//!
//! On the normalized graph, a node `c` with exactly one in-neighbour `a`
//! and one out-neighbour `b` (`a ≠ b ≠ c`) — or the bidirectional twin
//! case, in/out-neighbour set exactly `{a, b}` — lies on a `V_S → V_T`
//! simple path only as the interior of an `a → c → b` hop pair. It is
//! contracted into a shortcut `a → b` carrying an **expansion chain**:
//! the interior original node ids plus prefix weights (cumulative
//! distance from the chain's tail), so re-expansion recovers the
//! original node sequence and per-hop weights exactly. Contraction is
//! skipped when the shortcut pair already exists (the reduced graph must
//! stay normalized — one edge per pair — or two distinct original node
//! sequences would alias one reduced hop) or when the chain's total
//! weight would overflow the `u32` edge-weight domain.
//!
//! ## Id spaces
//!
//! A [`Reduction`] is a partial bijection `original ↔ reduced`. The
//! expansion chains store **original** ids, so an expanded path is
//! already in the original (external) id space — a reduced store file
//! never carries a separate `NodeRemap`; locality reordering of the
//! reduced graph is folded into the reduction via
//! [`Reduction::remapped`]. See `DESIGN.md` §15.

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::csr::{EdgeRef, Graph};
use crate::remap::NodeRemap;
use crate::section::SectionBuf;
use crate::types::NodeId;
use crate::update::WeightUpdate;

/// Sentinel in `orig_to_red` / the interior map: node was removed (pruned
/// or contracted) / node is not an interior.
pub const REDUCED_REMOVED: u32 = u32::MAX;

/// The mapping produced by [`reduce`]: which original nodes survive,
/// what they are called in the reduced graph, and — per reduced edge —
/// the chain of contracted original nodes the edge stands for.
///
/// Expansion data is stored struct-of-arrays, indexed by the reduced
/// graph's **forward CSR edge index**, so it serializes directly as
/// page-aligned v2 sections and loads zero-copy.
pub struct Reduction {
    /// `original id → reduced id`, [`REDUCED_REMOVED`] if removed.
    orig_to_red: SectionBuf<u32>,
    /// `reduced id → original id`; length is the reduced node count.
    red_to_orig: SectionBuf<u32>,
    /// Per forward edge of the reduced graph: `exp_offsets[e]..exp_offsets[e+1]`
    /// indexes the interior slice in `exp_nodes`/`exp_prefix`. Length is
    /// `edge_count + 1`; empty range ⇒ the edge is an original edge.
    exp_offsets: SectionBuf<u32>,
    /// Interior **original** node ids, tail→head order per chain.
    exp_nodes: SectionBuf<u32>,
    /// `exp_prefix[i]`: distance from the chain's tail to `exp_nodes[i]`.
    /// The distance to the chain's head is the shortcut edge's weight.
    exp_prefix: SectionBuf<u32>,
    /// Lazy: `original id → one reduced edge index whose chain contains
    /// it` ([`REDUCED_REMOVED`] if not an interior). Built on first
    /// update translation; a bidirectional interior also lives in the
    /// stored edge's twin, which lookups must check.
    interior_of: OnceLock<Box<[u32]>>,
}

impl Clone for Reduction {
    fn clone(&self) -> Self {
        Reduction {
            orig_to_red: self.orig_to_red.clone(),
            red_to_orig: self.red_to_orig.clone(),
            exp_offsets: self.exp_offsets.clone(),
            exp_nodes: self.exp_nodes.clone(),
            exp_prefix: self.exp_prefix.clone(),
            interior_of: OnceLock::new(),
        }
    }
}

impl PartialEq for Reduction {
    fn eq(&self, other: &Self) -> bool {
        self.orig_to_red == other.orig_to_red
            && self.red_to_orig == other.red_to_orig
            && self.exp_offsets == other.exp_offsets
            && self.exp_nodes == other.exp_nodes
            && self.exp_prefix == other.exp_prefix
    }
}

impl Eq for Reduction {}

impl std::fmt::Debug for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reduction")
            .field("original_nodes", &self.original_node_count())
            .field("reduced_nodes", &self.reduced_node_count())
            .field("shortcuts", &self.shortcut_count())
            .field("interiors", &self.interior_count())
            .finish()
    }
}

/// Borrowed reduction sections in serialization order:
/// `(orig_to_red, red_to_orig, exp_offsets, exp_nodes, exp_prefix)`.
pub type ReductionSections<'a> = (&'a [u32], &'a [u32], &'a [u32], &'a [u32], &'a [u32]);

/// A reduced graph together with the [`Reduction`] that produced it.
pub struct Reduced {
    /// The contracted, pruned, normalized graph the engines run on.
    pub graph: Graph,
    /// The original ↔ reduced mapping plus expansion chains.
    pub reduction: Reduction,
}

/// Errors from [`Reduction::translate_updates`] or
/// [`Reduction::from_sections`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// An update references a node id outside the *original* graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the original graph.
        node_count: usize,
    },
    /// An update references a `(from, to)` pair that is neither a kept
    /// edge nor a hop of any contracted chain.
    NoSuchEdge {
        /// Tail of the missing edge.
        from: NodeId,
        /// Head of the missing edge.
        to: NodeId,
    },
    /// Applying the update would push a contracted chain's total weight
    /// past `u32::MAX`, which the shortcut edge cannot represent.
    WeightOverflow {
        /// Tail of the updated hop.
        from: NodeId,
        /// Head of the updated hop.
        to: NodeId,
    },
    /// Serialized reduction sections are inconsistent with each other or
    /// with the reduced graph they were loaded against.
    Corrupt(String),
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::NodeOutOfRange { node, node_count } => write!(
                f,
                "update references node {node}, original graph has {node_count} nodes"
            ),
            ReduceError::NoSuchEdge { from, to } => {
                write!(f, "no edge {from} -> {to} in the original graph")
            }
            ReduceError::WeightOverflow { from, to } => write!(
                f,
                "updating hop {from} -> {to} overflows its chain's u32 total weight"
            ),
            ReduceError::Corrupt(msg) => write!(f, "corrupt reduction sections: {msg}"),
        }
    }
}

impl std::error::Error for ReduceError {}

/// A weight-update batch translated into the reduced id space by
/// [`Reduction::translate_updates`].
pub struct TranslatedUpdates {
    /// Updates to apply to the **reduced** graph (kept-edge updates plus
    /// one per touched contracted shortcut, carrying the new total).
    pub updates: Vec<WeightUpdate>,
    /// A replacement [`Reduction`] with repaired expansion prefix sums,
    /// present iff the batch hit a chain interior.
    pub reduction: Option<Reduction>,
    /// Updates silently dropped because an endpoint was pruned away: a
    /// pruned edge cannot lie on any `V_S → V_T` path, so no answer the
    /// reduced graph can produce observes its weight.
    pub dropped: usize,
}

impl Reduction {
    /// Node count of the original graph.
    pub fn original_node_count(&self) -> usize {
        self.orig_to_red.len()
    }

    /// Node count of the reduced graph.
    pub fn reduced_node_count(&self) -> usize {
        self.red_to_orig.len()
    }

    /// Number of original nodes absorbed into expansion chains.
    pub fn interior_count(&self) -> usize {
        // Bidirectional twins both list the interior; count distinct.
        self.exp_nodes.len()
    }

    /// Number of reduced edges that are contracted shortcuts.
    pub fn shortcut_count(&self) -> usize {
        self.exp_offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Map an original node id to its reduced id, `None` if the node was
    /// pruned or contracted away.
    pub fn to_reduced(&self, original: NodeId) -> Option<NodeId> {
        match self.orig_to_red.get(original as usize) {
            Some(&r) if r != REDUCED_REMOVED => Some(r),
            _ => None,
        }
    }

    /// Map a reduced node id back to its original id.
    ///
    /// # Panics
    /// If `reduced` is out of range for the reduced graph.
    pub fn to_original(&self, reduced: NodeId) -> NodeId {
        self.red_to_orig[reduced as usize]
    }

    /// True if the original node was absorbed into some expansion chain
    /// (as opposed to pruned or kept).
    pub fn is_interior(&self, original: NodeId) -> bool {
        self.interior_map()[original as usize] != REDUCED_REMOVED
    }

    /// The raw SoA sections, in serialization order:
    /// `(orig_to_red, red_to_orig, exp_offsets, exp_nodes, exp_prefix)`.
    pub fn sections(&self) -> ReductionSections<'_> {
        (
            &self.orig_to_red,
            &self.red_to_orig,
            &self.exp_offsets,
            &self.exp_nodes,
            &self.exp_prefix,
        )
    }

    /// True if every section is a zero-copy view into a mapping.
    pub fn is_fully_mapped(&self) -> bool {
        self.orig_to_red.is_mapped()
            && self.red_to_orig.is_mapped()
            && self.exp_offsets.is_mapped()
            && self.exp_nodes.is_mapped()
            && self.exp_prefix.is_mapped()
    }

    /// Reassemble a reduction from (possibly memory-mapped) sections,
    /// validating consistency against the **reduced** graph `g` in
    /// `O(n + m + interiors)` with no allocation.
    pub fn from_sections(
        orig_to_red: SectionBuf<u32>,
        red_to_orig: SectionBuf<u32>,
        exp_offsets: SectionBuf<u32>,
        exp_nodes: SectionBuf<u32>,
        exp_prefix: SectionBuf<u32>,
        g: &Graph,
    ) -> Result<Self, ReduceError> {
        let corrupt = |msg: String| ReduceError::Corrupt(msg);
        let n_orig = orig_to_red.len();
        let n_red = red_to_orig.len();
        if n_red != g.node_count() {
            return Err(corrupt(format!(
                "red_to_orig has {n_red} entries, reduced graph has {} nodes",
                g.node_count()
            )));
        }
        if n_red > n_orig {
            return Err(corrupt(format!(
                "reduced node count {n_red} exceeds original {n_orig}"
            )));
        }
        if exp_offsets.len() != g.edge_count() + 1 {
            return Err(corrupt(format!(
                "exp_offsets has {} entries, want edge_count + 1 = {}",
                exp_offsets.len(),
                g.edge_count() + 1
            )));
        }
        if exp_offsets.first() != Some(&0) {
            return Err(corrupt("exp_offsets does not start at 0".into()));
        }
        if exp_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("exp_offsets is not monotone".into()));
        }
        let interiors = *exp_offsets.last().expect("len >= 1") as usize;
        if exp_nodes.len() != interiors || exp_prefix.len() != interiors {
            return Err(corrupt(format!(
                "expansion arrays have {} / {} entries, offsets end at {interiors}",
                exp_nodes.len(),
                exp_prefix.len()
            )));
        }
        let mut kept = 0usize;
        for (o, &r) in orig_to_red.iter().enumerate() {
            if r == REDUCED_REMOVED {
                continue;
            }
            kept += 1;
            if red_to_orig.get(r as usize) != Some(&(o as u32)) {
                return Err(corrupt(format!(
                    "orig_to_red[{o}] = {r} but red_to_orig does not map back"
                )));
            }
        }
        if kept != n_red {
            return Err(corrupt(format!(
                "orig_to_red keeps {kept} nodes, red_to_orig lists {n_red}"
            )));
        }
        let edges = g.sections().1;
        for (e, w) in exp_offsets.windows(2).enumerate() {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            if lo == hi {
                continue;
            }
            let total = edges[e].weight;
            let mut prev = 0u32;
            for i in lo..hi {
                let node = exp_nodes[i] as usize;
                if node >= n_orig || orig_to_red[node] != REDUCED_REMOVED {
                    return Err(corrupt(format!(
                        "edge {e} interior {} is not a removed original node",
                        exp_nodes[i]
                    )));
                }
                let p = exp_prefix[i];
                if p < prev || p > total {
                    return Err(corrupt(format!(
                        "edge {e} prefix {p} not in [{prev}, {total}]"
                    )));
                }
                prev = p;
            }
        }
        Ok(Reduction {
            orig_to_red,
            red_to_orig,
            exp_offsets,
            exp_nodes,
            exp_prefix,
            interior_of: OnceLock::new(),
        })
    }

    /// Forward-CSR edge index of the (unique, normalized) reduced edge
    /// `u → v`, if it exists.
    pub fn pair_index(g: &Graph, u: NodeId, v: NodeId) -> Option<usize> {
        let base = g.sections().0[u as usize] as usize;
        g.out_edges(u)
            .iter()
            .position(|e| e.to == v)
            .map(|i| base + i)
    }

    fn exp_range(&self, e: usize) -> (usize, usize) {
        (
            self.exp_offsets[e] as usize,
            self.exp_offsets[e + 1] as usize,
        )
    }

    /// Interior original node ids of the reduced edge `u → v`
    /// (tail→head), empty if the hop is an original edge or absent.
    pub fn expand_hop(&self, g: &Graph, u: NodeId, v: NodeId) -> &[u32] {
        match Self::pair_index(g, u, v) {
            Some(e) => {
                let (lo, hi) = self.exp_range(e);
                &self.exp_nodes[lo..hi]
            }
            None => &[],
        }
    }

    /// Expand a reduced-id node sequence into the original id space,
    /// splicing each shortcut's interior chain between its endpoints.
    /// Reuses `out` (cleared first): zero allocations once its capacity
    /// has warmed up.
    pub fn expand_path(&self, g: &Graph, reduced: &[NodeId], out: &mut Vec<NodeId>) {
        out.clear();
        let Some((&first, rest)) = reduced.split_first() else {
            return;
        };
        out.push(self.to_original(first));
        let mut prev = first;
        for &v in rest {
            if let Some(e) = Self::pair_index(g, prev, v) {
                let (lo, hi) = self.exp_range(e);
                out.extend_from_slice(&self.exp_nodes[lo..hi]);
            }
            out.push(self.to_original(v));
            prev = v;
        }
    }

    fn interior_map(&self) -> &[u32] {
        self.interior_of.get_or_init(|| {
            let mut map = vec![REDUCED_REMOVED; self.orig_to_red.len()].into_boxed_slice();
            for (e, w) in self.exp_offsets.windows(2).enumerate() {
                for i in w[0] as usize..w[1] as usize {
                    let node = self.exp_nodes[i] as usize;
                    if map[node] == REDUCED_REMOVED {
                        map[node] = e as u32;
                    }
                }
            }
            map
        })
    }

    /// Tail node of forward edge `e`: the reduced node whose out-range
    /// contains `e` (binary search over the offset array).
    fn edge_tail(g: &Graph, e: usize) -> NodeId {
        let offsets = g.sections().0;
        // partition_point gives the first node whose range starts past e.
        (offsets.partition_point(|&o| o as usize <= e) - 1) as NodeId
    }

    /// The reverse-direction twin of edge `e` (edge `head → tail` with a
    /// nonempty chain), if the contraction was bidirectional.
    fn twin_shortcut(&self, g: &Graph, e: usize) -> Option<usize> {
        let tail = Self::edge_tail(g, e);
        let head = g.sections().1[e].to;
        let t = Self::pair_index(g, head, tail)?;
        let (lo, hi) = self.exp_range(t);
        (lo < hi).then_some(t)
    }

    /// Locate original hop `a → b` inside chain of edge `e`: returns the
    /// position `j` such that the chain node sequence `s` (tail, interiors,
    /// head — all original ids) has `s[j] == a && s[j+1] == b`.
    fn hop_in_chain(&self, g: &Graph, e: usize, a: NodeId, b: NodeId) -> Option<usize> {
        let tail = self.to_original(Self::edge_tail(g, e));
        let head = self.to_original(g.sections().1[e].to);
        let (lo, hi) = self.exp_range(e);
        let len = hi - lo;
        let seq = |j: usize| -> NodeId {
            if j == 0 {
                tail
            } else if j <= len {
                self.exp_nodes[lo + j - 1]
            } else {
                head
            }
        };
        (0..=len).find(|&j| seq(j) == a && seq(j + 1) == b)
    }

    /// Translate a weight-update batch from the **original** id space to
    /// the reduced graph `g`:
    ///
    /// * both endpoints kept, plain edge → passed through in reduced ids;
    /// * a hop interior to a contracted chain → the chain's prefix sums
    ///   are repaired copy-on-write and one update per touched shortcut
    ///   (carrying its new total) is emitted — no re-reduction;
    /// * either endpoint pruned → counted in `dropped` and ignored (a
    ///   pruned edge cannot affect any answer the keep set can ask for);
    /// * anything else → [`ReduceError::NoSuchEdge`].
    ///
    /// Like [`Graph::with_updated_weights`], the batch is atomic: any
    /// invalid entry fails the whole call.
    pub fn translate_updates(
        &self,
        g: &Graph,
        updates: &[WeightUpdate],
    ) -> Result<TranslatedUpdates, ReduceError> {
        let n_orig = self.orig_to_red.len();
        let mut out: Vec<WeightUpdate> = Vec::new();
        let mut dropped = 0usize;
        // Copy-on-write prefix array plus running totals per touched
        // shortcut, so repeated hits on one chain compose correctly.
        let mut prefix: Option<Vec<u32>> = None;
        let mut totals: Vec<(usize, u32)> = Vec::new();
        let pruned = |node: NodeId| {
            self.orig_to_red[node as usize] == REDUCED_REMOVED
                && self.interior_map()[node as usize] == REDUCED_REMOVED
        };
        for u in updates {
            for node in [u.from, u.to] {
                if node as usize >= n_orig {
                    return Err(ReduceError::NodeOutOfRange {
                        node,
                        node_count: n_orig,
                    });
                }
            }
            if u.from == u.to {
                // Reduction drops self-loops — a simple path can never
                // traverse one, so no answer observes their weight. The
                // dropped loop leaves no trace to validate against, so
                // any self-loop update is accepted as a no-op.
                dropped += 1;
                continue;
            }
            let (ra, rb) = (
                self.orig_to_red[u.from as usize],
                self.orig_to_red[u.to as usize],
            );
            if ra != REDUCED_REMOVED && rb != REDUCED_REMOVED {
                match Self::pair_index(g, ra, rb) {
                    Some(e) if self.exp_range(e).0 == self.exp_range(e).1 => {
                        out.push(WeightUpdate {
                            from: ra,
                            to: rb,
                            weight: u.weight,
                        });
                        continue;
                    }
                    // A kept→kept pair that is a shortcut (or absent)
                    // was never an original edge: the no-collision rule
                    // forbids contracting onto an existing pair.
                    _ => {
                        return Err(ReduceError::NoSuchEdge {
                            from: u.from,
                            to: u.to,
                        })
                    }
                }
            }
            // At least one endpoint is gone: interior hop or pruned edge.
            let mut located = None;
            'search: for x in [u.from, u.to] {
                let e0 = self.interior_map()[x as usize];
                if e0 == REDUCED_REMOVED {
                    continue;
                }
                for e in std::iter::once(e0 as usize).chain(self.twin_shortcut(g, e0 as usize)) {
                    if let Some(hop) = self.hop_in_chain(g, e, u.from, u.to) {
                        located = Some((e, hop));
                        break 'search;
                    }
                }
            }
            let Some((e, hop)) = located else {
                if pruned(u.from) || pruned(u.to) {
                    dropped += 1;
                    continue;
                }
                return Err(ReduceError::NoSuchEdge {
                    from: u.from,
                    to: u.to,
                });
            };
            let pf = prefix.get_or_insert_with(|| self.exp_prefix.to_vec());
            let total = match totals.iter_mut().find(|(te, _)| *te == e) {
                Some(entry) => entry,
                None => {
                    totals.push((e, g.sections().1[e].weight));
                    totals.last_mut().expect("just pushed")
                }
            };
            let (lo, hi) = self.exp_range(e);
            let len = hi - lo;
            // Chain distances: d(0) = 0, d(j) = prefix[j-1] for interior
            // positions, d(len+1) = the running total.
            let d = |pf: &[u32], j: usize| -> u64 {
                if j == 0 {
                    0
                } else if j <= len {
                    pf[lo + j - 1] as u64
                } else {
                    total.1 as u64
                }
            };
            let old_hop = d(pf, hop + 1) - d(pf, hop);
            let diff = u.weight as i64 - old_hop as i64;
            let new_total = total.1 as i64 + diff;
            if !(0..=u32::MAX as i64).contains(&new_total) {
                return Err(ReduceError::WeightOverflow {
                    from: u.from,
                    to: u.to,
                });
            }
            for j in (hop + 1)..=len {
                pf[lo + j - 1] = (pf[lo + j - 1] as i64 + diff) as u32;
            }
            total.1 = new_total as u32;
        }
        // Emit one reduced-space update per touched shortcut.
        for &(e, total) in &totals {
            out.push(WeightUpdate {
                from: Self::edge_tail(g, e),
                to: g.sections().1[e].to,
                weight: total,
            });
        }
        let reduction = prefix.map(|pf| Reduction {
            orig_to_red: self.orig_to_red.clone(),
            red_to_orig: self.red_to_orig.clone(),
            exp_offsets: self.exp_offsets.clone(),
            exp_nodes: self.exp_nodes.clone(),
            exp_prefix: pf.into(),
            interior_of: OnceLock::new(),
        });
        Ok(TranslatedUpdates {
            updates: out,
            reduction,
            dropped,
        })
    }

    /// Fold a locality reorder of the reduced graph into the reduction:
    /// `old_g` is the reduced graph this reduction describes, `remap`
    /// renames its nodes (`to_internal`), `new_g` is the reordered
    /// reduced graph. The result maps original ids straight to the new
    /// reduced ids — reduced store files carry no separate remap.
    ///
    /// # Panics
    /// If `remap`/`new_g` are inconsistent with `old_g` (every old edge
    /// must exist under the renamed endpoints).
    pub fn remapped(&self, old_g: &Graph, remap: &NodeRemap, new_g: &Graph) -> Reduction {
        let rename = |old: NodeId| -> NodeId {
            remap
                .to_internal(old)
                .expect("remap covers every reduced node")
        };
        let mut orig_to_red = self.orig_to_red.to_vec();
        for r in orig_to_red.iter_mut() {
            if *r != REDUCED_REMOVED {
                *r = rename(*r);
            }
        }
        let n_red = self.red_to_orig.len();
        let mut red_to_orig = vec![0u32; n_red];
        for (old, &orig) in self.red_to_orig.iter().enumerate() {
            red_to_orig[rename(old as NodeId) as usize] = orig;
        }
        // Re-bucket expansion slices into the new graph's edge order.
        let m = new_g.edge_count();
        let mut ranges: Vec<(u32, u32)> = vec![(0, 0); m];
        for (e, w) in self.exp_offsets.windows(2).enumerate() {
            if w[0] == w[1] {
                continue;
            }
            let u = rename(Self::edge_tail(old_g, e));
            let v = rename(old_g.sections().1[e].to);
            let ne = Self::pair_index(new_g, u, v).expect("reordered graph keeps every edge");
            ranges[ne] = (w[0], w[1]);
        }
        let mut exp_offsets = Vec::with_capacity(m + 1);
        let mut exp_nodes = Vec::with_capacity(self.exp_nodes.len());
        let mut exp_prefix = Vec::with_capacity(self.exp_prefix.len());
        exp_offsets.push(0u32);
        for &(lo, hi) in &ranges {
            exp_nodes.extend_from_slice(&self.exp_nodes[lo as usize..hi as usize]);
            exp_prefix.extend_from_slice(&self.exp_prefix[lo as usize..hi as usize]);
            exp_offsets.push(exp_nodes.len() as u32);
        }
        Reduction {
            orig_to_red: orig_to_red.into(),
            red_to_orig: red_to_orig.into(),
            exp_offsets: exp_offsets.into(),
            exp_nodes: exp_nodes.into(),
            exp_prefix: exp_prefix.into(),
            interior_of: OnceLock::new(),
        }
    }
}

/// Working adjacency entry during contraction. `exp` indexes the
/// interim expansion table, `u32::MAX` for original edges.
struct WEdge {
    to: u32,
    weight: u32,
    exp: u32,
}

const NO_EXP: u32 = u32::MAX;

/// Reachability sweep: every node reachable from `set` following the
/// chosen direction.
fn reach(g: &Graph, set: &[NodeId], forward: bool) -> Vec<bool> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in set {
        if !seen[s as usize] {
            seen[s as usize] = true;
            stack.push(s);
        }
    }
    while let Some(u) = stack.pop() {
        let edges = if forward {
            g.out_edges(u)
        } else {
            g.in_edges(u)
        };
        for e in edges {
            if !seen[e.to as usize] {
                seen[e.to as usize] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// Reduce `g` for queries whose sources come from `v_s` and targets from
/// `v_t`: prune nodes that cannot lie on any `v_s → v_t` path (nodes in
/// the keep set `v_s ∪ v_t` are always kept), normalize parallel edges
/// to their min copy, drop self-loops, then contract degree-2 chains.
/// An empty `v_s`/`v_t` disables the corresponding reachability prune
/// (queries may then start/end anywhere among kept nodes).
///
/// # Panics
/// If a keep node is out of range for `g`.
pub fn reduce(g: &Graph, v_s: &[NodeId], v_t: &[NodeId]) -> Reduced {
    let n = g.node_count();
    let mut keep = vec![false; n];
    for &v in v_s.iter().chain(v_t) {
        assert!(
            (v as usize) < n,
            "keep node {v} out of range for {n}-node graph"
        );
        keep[v as usize] = true;
    }
    // --- V_S / V_T pruning -------------------------------------------
    let mut alive = vec![true; n];
    if !v_s.is_empty() {
        let r = reach(g, v_s, true);
        for (a, r) in alive.iter_mut().zip(&r) {
            *a &= *r;
        }
    }
    if !v_t.is_empty() {
        let r = reach(g, v_t, false);
        for (a, r) in alive.iter_mut().zip(&r) {
            *a &= *r;
        }
    }
    for (a, k) in alive.iter_mut().zip(&keep) {
        *a |= *k;
    }
    // --- normalized working adjacency --------------------------------
    // Per-pair min copy, no self-loops, dead endpoints dropped. `inn`
    // mirrors `out` (same weight + expansion id per edge).
    let mut out: Vec<Vec<WEdge>> = Vec::with_capacity(n);
    for u in 0..n {
        let mut row: Vec<WEdge> = Vec::new();
        if alive[u] {
            let mut targets: Vec<(u32, u32)> = g
                .out_edges(u as NodeId)
                .iter()
                .filter(|e| alive[e.to as usize] && e.to as usize != u)
                .map(|e| (e.to, e.weight))
                .collect();
            targets.sort_unstable();
            for (to, weight) in targets {
                match row.last_mut() {
                    Some(last) if last.to == to => {} // non-min parallel copy
                    _ => row.push(WEdge {
                        to,
                        weight,
                        exp: NO_EXP,
                    }),
                }
            }
        }
        out.push(row);
    }
    let mut inn: Vec<Vec<WEdge>> = (0..n).map(|_| Vec::new()).collect();
    for (u, row) in out.iter().enumerate() {
        for e in row {
            inn[e.to as usize].push(WEdge {
                to: u as u32,
                weight: e.weight,
                exp: e.exp,
            });
        }
    }
    // --- chain contraction -------------------------------------------
    let mut exps: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut removed = vec![false; n];
    let mut queued = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for u in 0..n {
        if alive[u] && !keep[u] {
            queued[u] = true;
            queue.push_back(u as u32);
        }
    }
    // Build the concatenated chain for shortcut a→…→c→…→b out of the
    // halves' expansions (NO_EXP = empty) and the first half's weight.
    let cat = |exps: &[(Vec<u32>, Vec<u32>)], e1: u32, w1: u32, c: u32, e2: u32| {
        let empty: (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
        let h1 = if e1 == NO_EXP {
            &empty
        } else {
            &exps[e1 as usize]
        };
        let h2 = if e2 == NO_EXP {
            &empty
        } else {
            &exps[e2 as usize]
        };
        let mut nodes = Vec::with_capacity(h1.0.len() + 1 + h2.0.len());
        let mut prefix = Vec::with_capacity(nodes.capacity());
        nodes.extend_from_slice(&h1.0);
        prefix.extend_from_slice(&h1.1);
        nodes.push(c);
        prefix.push(w1);
        nodes.extend_from_slice(&h2.0);
        prefix.extend(h2.1.iter().map(|&p| p + w1));
        (nodes, prefix)
    };
    let drop_edge = |rows: &mut [Vec<WEdge>], u: u32, to: u32| {
        let row = &mut rows[u as usize];
        let i = row
            .iter()
            .position(|e| e.to == to)
            .expect("edge present in both mirrors");
        row.remove(i);
    };
    while let Some(c) = queue.pop_front() {
        let ci = c as usize;
        queued[ci] = false;
        if removed[ci] || keep[ci] || !alive[ci] {
            continue;
        }
        enum Plan {
            Directed { a: u32, b: u32 },
            Bidi { a: u32, b: u32 },
        }
        let plan = match (inn[ci].len(), out[ci].len()) {
            (1, 1) if inn[ci][0].to != out[ci][0].to => Plan::Directed {
                a: inn[ci][0].to,
                b: out[ci][0].to,
            },
            (2, 2) => {
                let mut i = [inn[ci][0].to, inn[ci][1].to];
                let mut o = [out[ci][0].to, out[ci][1].to];
                i.sort_unstable();
                o.sort_unstable();
                if i == o && i[0] != i[1] {
                    Plan::Bidi { a: i[0], b: i[1] }
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        let find = |row: &[WEdge], to: u32| -> (u32, u32) {
            let e = row.iter().find(|e| e.to == to).expect("neighbour edge");
            (e.weight, e.exp)
        };
        let has_pair =
            |out: &[Vec<WEdge>], u: u32, v: u32| out[u as usize].iter().any(|e| e.to == v);
        let requeue: [Option<u32>; 2];
        match plan {
            Plan::Directed { a, b } => {
                let (w1, e1) = find(&inn[ci], a); // a → c
                let (w2, e2) = find(&out[ci], b); // c → b
                let total = w1 as u64 + w2 as u64;
                if total > u32::MAX as u64 || has_pair(&out, a, b) {
                    continue;
                }
                let (nodes, prefix) = cat(&exps, e1, w1, c, e2);
                let x = exps.len() as u32;
                exps.push((nodes, prefix));
                drop_edge(&mut out, a, c);
                drop_edge(&mut inn, c, a);
                drop_edge(&mut out, c, b);
                drop_edge(&mut inn, b, c);
                out[a as usize].push(WEdge {
                    to: b,
                    weight: total as u32,
                    exp: x,
                });
                inn[b as usize].push(WEdge {
                    to: a,
                    weight: total as u32,
                    exp: x,
                });
                removed[ci] = true;
                requeue = [Some(a), Some(b)];
            }
            Plan::Bidi { a, b } => {
                let (wac, eac) = find(&inn[ci], a); // a → c
                let (wcb, ecb) = find(&out[ci], b); // c → b
                let (wbc, ebc) = find(&inn[ci], b); // b → c
                let (wca, eca) = find(&out[ci], a); // c → a
                let t_ab = wac as u64 + wcb as u64;
                let t_ba = wbc as u64 + wca as u64;
                if t_ab > u32::MAX as u64
                    || t_ba > u32::MAX as u64
                    || has_pair(&out, a, b)
                    || has_pair(&out, b, a)
                {
                    continue;
                }
                let (n_ab, p_ab) = cat(&exps, eac, wac, c, ecb);
                let (n_ba, p_ba) = cat(&exps, ebc, wbc, c, eca);
                let x_ab = exps.len() as u32;
                exps.push((n_ab, p_ab));
                let x_ba = exps.len() as u32;
                exps.push((n_ba, p_ba));
                drop_edge(&mut out, a, c);
                drop_edge(&mut out, b, c);
                drop_edge(&mut out, c, a);
                drop_edge(&mut out, c, b);
                drop_edge(&mut inn, c, a);
                drop_edge(&mut inn, c, b);
                drop_edge(&mut inn, a, c);
                drop_edge(&mut inn, b, c);
                out[a as usize].push(WEdge {
                    to: b,
                    weight: t_ab as u32,
                    exp: x_ab,
                });
                inn[b as usize].push(WEdge {
                    to: a,
                    weight: t_ab as u32,
                    exp: x_ab,
                });
                out[b as usize].push(WEdge {
                    to: a,
                    weight: t_ba as u32,
                    exp: x_ba,
                });
                inn[a as usize].push(WEdge {
                    to: b,
                    weight: t_ba as u32,
                    exp: x_ba,
                });
                removed[ci] = true;
                requeue = [Some(a), Some(b)];
            }
        }
        for v in requeue.into_iter().flatten() {
            let vi = v as usize;
            if !keep[vi] && !removed[vi] && !queued[vi] {
                queued[vi] = true;
                queue.push_back(v);
            }
        }
    }
    // --- compact to CSR ----------------------------------------------
    let mut orig_to_red = vec![REDUCED_REMOVED; n];
    let mut red_to_orig: Vec<u32> = Vec::new();
    for u in 0..n {
        if alive[u] && !removed[u] {
            orig_to_red[u] = red_to_orig.len() as u32;
            red_to_orig.push(u as u32);
        }
    }
    let n_red = red_to_orig.len();
    let m_red: usize = red_to_orig.iter().map(|&o| out[o as usize].len()).sum();
    let mut out_offsets = Vec::with_capacity(n_red + 1);
    let mut out_edges: Vec<EdgeRef> = Vec::with_capacity(m_red);
    let mut exp_offsets = Vec::with_capacity(m_red + 1);
    let mut exp_nodes: Vec<u32> = Vec::new();
    let mut exp_prefix: Vec<u32> = Vec::new();
    out_offsets.push(0u32);
    exp_offsets.push(0u32);
    for &o in &red_to_orig {
        // Deterministic edge order regardless of contraction history.
        out[o as usize].sort_unstable_by_key(|e| e.to);
        for e in &out[o as usize] {
            out_edges.push(EdgeRef {
                to: orig_to_red[e.to as usize],
                weight: e.weight,
            });
            if e.exp != NO_EXP {
                let (nodes, prefix) = &exps[e.exp as usize];
                exp_nodes.extend_from_slice(nodes);
                exp_prefix.extend_from_slice(prefix);
            }
            exp_offsets.push(exp_nodes.len() as u32);
        }
        out_offsets.push(out_edges.len() as u32);
    }
    // Reverse CSR by counting sort over heads.
    let mut in_deg = vec![0u32; n_red];
    for e in &out_edges {
        in_deg[e.to as usize] += 1;
    }
    let mut in_offsets = Vec::with_capacity(n_red + 1);
    in_offsets.push(0u32);
    for d in &in_deg {
        in_offsets.push(in_offsets.last().unwrap() + d);
    }
    let mut cursor: Vec<u32> = in_offsets[..n_red].to_vec();
    let mut in_edges = vec![EdgeRef { to: 0, weight: 0 }; m_red];
    for u in 0..n_red {
        let (lo, hi) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
        for e in &out_edges[lo..hi] {
            let slot = cursor[e.to as usize] as usize;
            cursor[e.to as usize] += 1;
            in_edges[slot] = EdgeRef {
                to: u as u32,
                weight: e.weight,
            };
        }
    }
    let graph = Graph::from_csr(
        out_offsets.into_boxed_slice(),
        out_edges.into_boxed_slice(),
        in_offsets.into_boxed_slice(),
        in_edges.into_boxed_slice(),
    );
    let reduction = Reduction {
        orig_to_red: orig_to_red.into(),
        red_to_orig: red_to_orig.into(),
        exp_offsets: exp_offsets.into(),
        exp_nodes: exp_nodes.into(),
        exp_prefix: exp_prefix.into(),
        interior_of: OnceLock::new(),
    };
    Reduced { graph, reduction }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn corridor(n: u32) -> Graph {
        // 0 ↔ 1 ↔ … ↔ n-1, weights i+1 on hop i in both directions.
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_bidirectional(i, i + 1, i + 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn bidirectional_corridor_contracts_to_endpoints() {
        let g = corridor(5);
        let red = reduce(&g, &[0], &[4]);
        assert_eq!(red.graph.node_count(), 2);
        assert_eq!(red.graph.edge_count(), 2);
        let r = &red.reduction;
        assert_eq!(r.to_reduced(0), Some(0));
        assert_eq!(r.to_reduced(4), Some(1));
        assert_eq!(r.to_reduced(2), None);
        assert!(r.is_interior(2));
        // Total weight 1+2+3+4 = 10 both ways.
        assert_eq!(red.graph.edge_weight(0, 1), Some(10));
        assert_eq!(red.graph.edge_weight(1, 0), Some(10));
        assert_eq!(r.expand_hop(&red.graph, 0, 1), &[1, 2, 3]);
        assert_eq!(r.expand_hop(&red.graph, 1, 0), &[3, 2, 1]);
        let mut out = Vec::new();
        r.expand_path(&red.graph, &[0, 1], &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        r.expand_path(&red.graph, &[1, 0], &mut out);
        assert_eq!(out, vec![4, 3, 2, 1, 0]);
        // Prefix sums: distance from tail to each interior.
        let e = Reduction::pair_index(&red.graph, 0, 1).unwrap();
        let (lo, hi) = r.exp_range(e);
        assert_eq!(&r.sections().4[lo..hi], &[1, 3, 6]);
    }

    #[test]
    fn directed_chain_contracts() {
        // 0 → 1 → 2 → 3 plus a direct return edge 3 → 0.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5).unwrap();
        b.add_edge(1, 2, 7).unwrap();
        b.add_edge(2, 3, 2).unwrap();
        b.add_edge(3, 0, 1).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0], &[3]);
        assert_eq!(red.graph.node_count(), 2);
        assert_eq!(red.graph.edge_weight(0, 1), Some(14));
        assert_eq!(
            red.reduction.expand_hop(&red.graph, 0, 1),
            &[1, 2],
            "interior chain in tail→head order"
        );
    }

    #[test]
    fn existing_shortcut_pair_blocks_contraction() {
        // Triangle 0 → 1 → 2 with a direct 0 → 2: contracting 1 would
        // alias two distinct node sequences onto the pair (0, 2).
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(0, 2, 5).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0], &[2]);
        assert_eq!(red.graph.node_count(), 3, "node 1 must survive");
        assert_eq!(red.reduction.shortcut_count(), 0);
    }

    #[test]
    fn self_loops_and_parallel_edges_normalize_away() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 4).unwrap();
        b.add_edge(0, 1, 2).unwrap(); // parallel, min copy 2
        b.add_edge(1, 1, 9).unwrap(); // self-loop on the chain node
        b.add_edge(1, 2, 3).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0], &[2]);
        assert_eq!(red.graph.node_count(), 2);
        assert_eq!(red.graph.edge_weight(0, 1), Some(5), "2 + 3 via min copy");
        assert_eq!(red.reduction.expand_hop(&red.graph, 0, 1), &[1]);
    }

    #[test]
    fn unreachable_regions_are_pruned_but_keep_nodes_survive() {
        // 0 → 1 → 2; 3 → 4 disconnected; 5 isolated but kept.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(3, 4, 1).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0, 5], &[2]);
        let r = &red.reduction;
        assert!(r.to_reduced(3).is_none());
        assert!(r.to_reduced(4).is_none());
        assert!(r.to_reduced(5).is_some(), "keep nodes are never pruned");
        // Node 1 is a directed degree-2 interior and contracts away.
        assert_eq!(red.graph.node_count(), 3); // 0, 2, 5
        assert!(r.is_interior(1));
    }

    #[test]
    fn cycle_back_to_the_same_neighbour_is_not_contracted() {
        // 0 → 1 → 0: node 1 has in {0} and out {0}; contraction would
        // create a self-loop shortcut.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 0, 1).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0], &[0]);
        assert_eq!(red.graph.node_count(), 2);
        assert_eq!(red.reduction.shortcut_count(), 0);
    }

    #[test]
    fn translate_direct_interior_pruned_and_missing() {
        // Corridor 0..=4 kept at {0, 4}, plus a pruned appendage 5 → 2
        // (cannot be reached from 0) and a kept-pair direct edge 0 → 4.
        let mut b = GraphBuilder::new(6);
        for i in 0..4u32 {
            b.add_bidirectional(i, i + 1, 10).unwrap();
        }
        b.add_edge(5, 2, 1).unwrap();
        b.add_edge(0, 4, 100).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0], &[4]);
        let (rg, r) = (&red.graph, &red.reduction);
        // Direct edge 0 → 4 blocks contraction onto (0, 4)? No: the
        // corridor is bidirectional so contraction targets both (0,4)
        // and (4,0); (0,4) exists ⇒ the last chain node survives.
        // Whatever the final shape, updates must round-trip:
        let t = r
            .translate_updates(
                rg,
                &[WeightUpdate {
                    from: 0,
                    to: 4,
                    weight: 50,
                }],
            )
            .unwrap();
        assert_eq!(t.updates.len(), 1);
        assert!(t.reduction.is_none());
        assert_eq!(t.dropped, 0);
        // Interior hop 1 → 2 (some chain contains it).
        let t = r
            .translate_updates(
                rg,
                &[WeightUpdate {
                    from: 1,
                    to: 2,
                    weight: 25,
                }],
            )
            .unwrap();
        assert!(t.reduction.is_some(), "prefix repair expected");
        assert_eq!(t.dropped, 0);
        // Pruned edge 5 → 2 is dropped silently.
        let t = r
            .translate_updates(
                rg,
                &[WeightUpdate {
                    from: 5,
                    to: 2,
                    weight: 1,
                }],
            )
            .unwrap();
        assert_eq!(t.dropped, 1);
        assert!(t.updates.is_empty());
        // A pair that never existed errors.
        assert!(matches!(
            r.translate_updates(
                rg,
                &[WeightUpdate {
                    from: 0,
                    to: 3,
                    weight: 1
                }]
            ),
            Err(ReduceError::NoSuchEdge { from: 0, to: 3 })
        ));
        assert!(matches!(
            r.translate_updates(
                rg,
                &[WeightUpdate {
                    from: 9,
                    to: 0,
                    weight: 1
                }]
            ),
            Err(ReduceError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn interior_update_repairs_prefix_sums_exactly() {
        let g = corridor(5); // hops 1, 2, 3, 4
        let red = reduce(&g, &[0], &[4]);
        let (rg, r) = (&red.graph, &red.reduction);
        // Set hop 2 → 3 (weight 3) to 30 — applies to both directions'
        // chains? No: updates are directed; 2 → 3 lives in the 0→4 chain
        // at hop index 2 and in the 4→0 chain as... the 4→0 chain walks
        // 4, 3, 2, 1, 0 — its hops are (3,2), (2,1), (1,0) reversed:
        // hop (2,3) does NOT appear there. Only the forward chain moves.
        let t = r
            .translate_updates(
                rg,
                &[WeightUpdate {
                    from: 2,
                    to: 3,
                    weight: 30,
                }],
            )
            .unwrap();
        assert_eq!(t.dropped, 0);
        assert_eq!(t.updates.len(), 1);
        let u = t.updates[0];
        // Forward shortcut total: 1 + 2 + 30 + 4 = 37.
        assert_eq!(u.weight, 37);
        let nr = t.reduction.unwrap();
        let e = Reduction::pair_index(rg, u.from, u.to).unwrap();
        let (lo, hi) = nr.exp_range(e);
        assert_eq!(&nr.sections().4[lo..hi], &[1, 3, 33]);
        // And the untouched reverse chain keeps its prefixes.
        let t2 = nr
            .translate_updates(
                rg,
                &[WeightUpdate {
                    from: 3,
                    to: 2,
                    weight: 7,
                }],
            )
            .unwrap();
        let u2 = t2.updates[0];
        assert_eq!(u2.weight, 1 + 2 + 7 + 4); // reverse hops 4,3,(3→2 now 7),1...
    }

    #[test]
    fn reverse_chain_update_totals_are_exact() {
        let g = corridor(5);
        let red = reduce(&g, &[0], &[4]);
        let (rg, r) = (&red.graph, &red.reduction);
        // Reverse chain 4 → 3 → 2 → 1 → 0 hops: (4,3)=4, (3,2)=3,
        // (2,1)=2, (1,0)=1. Update (3,2) to 7: total 4+7+2+1 = 14.
        let t = r
            .translate_updates(
                rg,
                &[WeightUpdate {
                    from: 3,
                    to: 2,
                    weight: 7,
                }],
            )
            .unwrap();
        assert_eq!(t.updates.len(), 1);
        assert_eq!(t.updates[0].weight, 14);
    }

    #[test]
    fn chain_total_overflow_is_rejected() {
        let g = corridor(5);
        let red = reduce(&g, &[0], &[4]);
        assert!(matches!(
            red.reduction.translate_updates(
                &red.graph,
                &[WeightUpdate {
                    from: 1,
                    to: 2,
                    weight: u32::MAX
                }]
            ),
            Err(ReduceError::WeightOverflow { from: 1, to: 2 })
        ));
    }

    #[test]
    fn contraction_skips_overflowing_totals() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, u32::MAX - 1).unwrap();
        b.add_edge(1, 2, 2).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0], &[2]);
        assert_eq!(
            red.graph.node_count(),
            3,
            "u32 overflow blocks the shortcut"
        );
    }

    #[test]
    fn sections_round_trip_through_from_sections() {
        let g = corridor(7);
        let red = reduce(&g, &[0], &[6]);
        let (a, b, c, d, e) = red.reduction.sections();
        let back = Reduction::from_sections(
            a.to_vec().into(),
            b.to_vec().into(),
            c.to_vec().into(),
            d.to_vec().into(),
            e.to_vec().into(),
            &red.graph,
        )
        .unwrap();
        assert_eq!(back, red.reduction);
        // Corrupt: truncate red_to_orig.
        assert!(Reduction::from_sections(
            a.to_vec().into(),
            b[..1].to_vec().into(),
            c.to_vec().into(),
            d.to_vec().into(),
            e.to_vec().into(),
            &red.graph,
        )
        .is_err());
    }

    #[test]
    fn remapped_folds_a_reorder_into_the_reduction() {
        // Corridor with a stub so the reduced graph has 3 nodes to permute.
        let mut b = GraphBuilder::new(6);
        for i in 0..4u32 {
            b.add_bidirectional(i, i + 1, 1).unwrap();
        }
        b.add_bidirectional(4, 5, 1).unwrap();
        let g = b.build();
        let red = reduce(&g, &[0, 5], &[4]);
        let n_red = red.graph.node_count();
        // Reverse permutation as the "reorder".
        let old_to_new: Vec<u32> = (0..n_red as u32).rev().collect();
        let remap = NodeRemap::from_old_to_new(old_to_new.clone()).unwrap();
        // Build the permuted graph by hand.
        let mut nb = GraphBuilder::new(n_red);
        let (offs, edges, _, _) = red.graph.sections();
        for u in 0..n_red {
            for e in &edges[offs[u] as usize..offs[u + 1] as usize] {
                nb.add_edge(old_to_new[u], old_to_new[e.to as usize], e.weight)
                    .unwrap();
            }
        }
        let ng = nb.build();
        let nr = red.reduction.remapped(&red.graph, &remap, &ng);
        // Expansion must be preserved under renaming.
        let mut want = Vec::new();
        let mut got = Vec::new();
        for u in 0..n_red as u32 {
            for e in red.graph.out_edges(u) {
                red.reduction.expand_path(&red.graph, &[u, e.to], &mut want);
                nr.expand_path(
                    &ng,
                    &[old_to_new[u as usize], old_to_new[e.to as usize]],
                    &mut got,
                );
                assert_eq!(want, got, "hop {u} -> {}", e.to);
            }
        }
        assert_eq!(
            nr.to_reduced(0),
            Some(old_to_new[red.reduction.to_reduced(0).unwrap() as usize])
        );
    }

    #[test]
    fn empty_keep_sets_disable_pruning() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        let g = b.build();
        let red = reduce(&g, &[], &[]);
        assert_eq!(red.graph.node_count(), 3, "no pruning without keep sets");
    }
}
