//! [`PathSet`]: a flat, arena-backed collection of result paths, and
//! [`PathRef`], the borrowed view handed to consumers.
//!
//! A query's answer is `k` paths. Holding them as `Vec<Path>` costs two
//! heap allocations per path (the `Vec<NodeId>` plus the outer slot
//! growth); a [`PathSet`] instead packs every node sequence into one
//! shared buffer with `(start, len, length)` spans, so a warmed-up set
//! absorbs a whole answer without touching the allocator.

use crate::csr::Graph;
use crate::path::{validate_nodes, Path};
use crate::types::{Length, NodeId};

/// A borrowed view of one path inside a [`PathSet`] (or any node slice).
///
/// `Copy`, so it can be passed around freely; convert to an owned
/// [`Path`] with [`PathRef::to_path`] at trust boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRef<'a> {
    /// The node sequence, source first.
    pub nodes: &'a [NodeId],
    /// Total weight of the constituent edges.
    pub length: Length,
}

impl<'a> PathRef<'a> {
    /// Source node `v_1`.
    ///
    /// # Panics
    /// Panics on an empty node sequence (never produced by this workspace).
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has at least one node")
    }

    /// Destination node `v_l`.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Number of edges (`l − 1`).
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True if all nodes are distinct (Def. in §2: a *simple* path).
    /// Quadratic in the (short) path length, but allocation-free.
    pub fn is_simple(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, v)| !self.nodes[..i].contains(v))
    }

    /// Same check as [`Path::validate`], without materializing.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        validate_nodes(g, self.nodes, self.length)
    }

    /// Copy into an owned [`Path`].
    pub fn to_path(&self) -> Path {
        Path {
            nodes: self.nodes.to_vec(),
            length: self.length,
        }
    }
}

impl std::fmt::Display for PathRef<'_> {
    /// `v0 -> v1 -> … (length L)`, identical to [`Path`]'s format.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, " (length {})", self.length)
    }
}

/// One span of the flat node buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    start: u32,
    len: u32,
    length: Length,
}

/// An ordered collection of paths in one flat buffer.
///
/// ```
/// use kpj_graph::PathSet;
/// let mut set = PathSet::new();
/// set.push(&[0, 1, 2], 7);
/// set.push(&[0, 3], 9);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.path(0).nodes, [0, 1, 2]);
/// let lengths: Vec<u64> = set.iter().map(|p| p.length).collect();
/// assert_eq!(lengths, vec![7, 9]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathSet {
    nodes: Vec<NodeId>,
    spans: Vec<Span>,
}

impl PathSet {
    /// An empty set.
    pub fn new() -> PathSet {
        PathSet::default()
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no paths are held.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total node count summed over every path (the flat buffer's size) —
    /// e.g. for pre-sizing serialization buffers.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Drop all paths, keeping both allocations.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.spans.clear();
    }

    /// Append a path (copies `nodes` into the flat buffer).
    ///
    /// # Panics
    /// Panics if the flat buffer grows past `u32::MAX` nodes.
    pub fn push(&mut self, nodes: &[NodeId], length: Length) {
        let start = u32::try_from(self.nodes.len()).expect("PathSet overflow");
        let len = u32::try_from(nodes.len()).expect("path too long");
        self.nodes.extend_from_slice(nodes);
        self.spans.push(Span { start, len, length });
    }

    /// The `i`-th path.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn path(&self, i: usize) -> PathRef<'_> {
        let s = self.spans[i];
        PathRef {
            nodes: &self.nodes[s.start as usize..(s.start + s.len) as usize],
            length: s.length,
        }
    }

    /// The `i`-th path, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<PathRef<'_>> {
        (i < self.spans.len()).then(|| self.path(i))
    }

    /// The first (shortest) path, if any.
    pub fn first(&self) -> Option<PathRef<'_>> {
        self.get(0)
    }

    /// The last (k-th) path, if any.
    pub fn last(&self) -> Option<PathRef<'_>> {
        self.len().checked_sub(1).map(|i| self.path(i))
    }

    /// Iterate over the paths in rank order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = PathRef<'_>> {
        (0..self.len()).map(|i| self.path(i))
    }

    /// The length column (handy for agreement checks).
    pub fn lengths(&self) -> Vec<Length> {
        self.spans.iter().map(|s| s.length).collect()
    }

    /// Materialize every path (the owned-`Path` bridge).
    pub fn to_paths(&self) -> Vec<Path> {
        self.iter().map(|p| p.to_path()).collect()
    }
}

impl<'a> IntoIterator for &'a PathSet {
    type Item = PathRef<'a>;
    type IntoIter = PathSetIter<'a>;

    fn into_iter(self) -> PathSetIter<'a> {
        PathSetIter { set: self, next: 0 }
    }
}

/// Iterator over a [`PathSet`]'s paths.
#[derive(Debug, Clone)]
pub struct PathSetIter<'a> {
    set: &'a PathSet,
    next: usize,
}

impl<'a> Iterator for PathSetIter<'a> {
    type Item = PathRef<'a>;

    fn next(&mut self) -> Option<PathRef<'a>> {
        let item = self.set.get(self.next)?;
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.set.len() - self.next;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for PathSetIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn push_and_index() {
        let mut s = PathSet::new();
        s.push(&[0, 1, 2], 3);
        s.push(&[5], 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.path(0).nodes, [0, 1, 2]);
        assert_eq!(s.path(0).length, 3);
        assert_eq!(s.path(1).nodes, [5]);
        assert_eq!(s.first().unwrap().length, 3);
        assert_eq!(s.last().unwrap().length, 0);
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn iteration_orders_and_counts() {
        let mut s = PathSet::new();
        for i in 0..4u64 {
            s.push(&[i as NodeId], i);
        }
        assert_eq!(s.lengths(), vec![0, 1, 2, 3]);
        let via_for: Vec<Length> = (&s).into_iter().map(|p| p.length).collect();
        assert_eq!(via_for, vec![0, 1, 2, 3]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = PathSet::new();
        s.push(&[0, 1, 2, 3], 9);
        let cap = s.nodes.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.nodes.capacity(), cap);
    }

    #[test]
    fn ref_accessors_and_simplicity() {
        let p = PathRef {
            nodes: &[3, 1, 4],
            length: 9,
        };
        assert_eq!(p.source(), 3);
        assert_eq!(p.destination(), 4);
        assert_eq!(p.edge_count(), 2);
        assert!(p.is_simple());
        assert!(!PathRef {
            nodes: &[0, 1, 0],
            length: 0
        }
        .is_simple());
        assert_eq!(p.to_string(), "3 -> 1 -> 4 (length 9)");
        assert_eq!(p.to_path().nodes, vec![3, 1, 4]);
    }

    #[test]
    fn ref_validate_matches_path_validate() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(1, 2, 3).unwrap();
        let g = b.build();
        let good = PathRef {
            nodes: &[0, 1, 2],
            length: 5,
        };
        assert!(good.validate(&g).is_ok());
        let bad = PathRef {
            nodes: &[0, 2],
            length: 1,
        };
        assert!(bad.validate(&g).unwrap_err().contains("missing edge"));
    }
}
