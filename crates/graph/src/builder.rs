//! Mutable builder producing immutable CSR [`Graph`]s.

use crate::csr::{EdgeRef, Graph};
use crate::error::GraphError;
use crate::types::{NodeId, Weight};

/// Accumulates edges and produces a [`Graph`] with both forward and reverse
/// CSR adjacency built by counting sort (`O(n + m)`).
///
/// ```
/// use kpj_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_bidirectional(0, 1, 5).unwrap();
/// b.add_edge(1, 2, 2).unwrap();
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3); // the bidirectional edge counts twice
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: u32,
    // Flat edge list: (tail, head, weight).
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// A builder for a graph with exactly `node_count` nodes (ids `0..n`).
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count < u32::MAX as usize,
            "node count exceeds u32 id space"
        );
        GraphBuilder {
            node_count: node_count as u32,
            edges: Vec::new(),
        }
    }

    /// A builder that pre-allocates space for `edge_hint` edges.
    pub fn with_capacity(node_count: usize, edge_hint: usize) -> Self {
        let mut b = Self::new(node_count);
        b.edges.reserve(edge_hint);
        b
    }

    /// Number of nodes the final graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `u → v` with weight `w`.
    ///
    /// Self-loops are accepted (a simple path can never use one, so they are
    /// harmless) and parallel edges are kept as-is.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        let n = self.node_count;
        for &x in &[u, v] {
            if x >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: x as u64,
                    node_count: n as u64,
                });
            }
        }
        self.edges.push((u, v, w));
        Ok(())
    }

    /// Add both `u → v` and `v → u` with the same weight, as in the paper's
    /// road networks ("edges are bidirectional").
    pub fn add_bidirectional(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        self.add_edge(u, v, w)?;
        self.add_edge(v, u, w)
    }

    /// Finalize into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.node_count as usize;
        let m = self.edges.len();
        assert!(
            m <= u32::MAX as usize,
            "edge count exceeds u32 offset space"
        );

        let (out_offsets, out_edges) =
            csr_from_edges(n, self.edges.iter().map(|&(u, v, w)| (u, v, w)));
        let (in_offsets, in_edges) =
            csr_from_edges(n, self.edges.iter().map(|&(u, v, w)| (v, u, w)));
        Graph::from_csr(out_offsets, out_edges, in_offsets, in_edges)
    }
}

/// Counting-sort construction of one CSR direction.
fn csr_from_edges(
    n: usize,
    edges: impl Iterator<Item = (NodeId, NodeId, Weight)> + Clone,
) -> (Box<[u32]>, Box<[EdgeRef]>) {
    let mut offsets = vec![0u32; n + 1];
    for (tail, _, _) in edges.clone() {
        offsets[tail as usize + 1] += 1;
    }
    for i in 1..=n {
        offsets[i] += offsets[i - 1];
    }
    let m = offsets[n] as usize;
    let mut cursor = offsets.clone();
    let mut out = vec![EdgeRef { to: 0, weight: 0 }; m];
    for (tail, head, w) in edges {
        let slot = cursor[tail as usize] as usize;
        out[slot] = EdgeRef {
            to: head,
            weight: w,
        };
        cursor[tail as usize] += 1;
    }
    (offsets.into_boxed_slice(), out.into_boxed_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_endpoints() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2, 1),
            Err(GraphError::NodeOutOfRange {
                node: 2,
                node_count: 2
            })
        ));
        assert!(b.add_edge(2, 0, 1).is_err());
        assert!(b.add_edge(1, 0, 1).is_ok());
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn preserves_parallel_edges_and_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(0, 0, 3).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.in_degree(0), 1);
    }

    #[test]
    fn bidirectional_adds_two_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_bidirectional(0, 1, 7).unwrap();
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.edge_weight(1, 0), Some(7));
    }

    #[test]
    fn adjacency_grouped_by_tail() {
        // Interleave tails to exercise the counting sort.
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 1).unwrap();
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(2, 1, 3).unwrap();
        b.add_edge(0, 2, 4).unwrap();
        let g = b.build();
        let heads0: Vec<_> = g.out_edges(0).iter().map(|e| e.to).collect();
        let heads2: Vec<_> = g.out_edges(2).iter().map(|e| e.to).collect();
        assert_eq!(heads0, vec![1, 2]);
        assert_eq!(heads2, vec![0, 1]);
        assert!(g.out_edges(1).is_empty());
    }
}
