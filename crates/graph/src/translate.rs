//! The id-space boundary, consolidated: external node ids (what the
//! wire, `.kpjcase` files and CLI flags carry) versus engine node ids
//! (what the loaded graph's CSR arrays index).
//!
//! Three cases exist in the workspace and used to be smeared across
//! call sites as ad-hoc `Option<NodeRemap>` plumbing:
//!
//! * **Identity** — the graph was loaded as written; external == engine.
//! * **Remap** — a locality reorder renamed every node; translate both
//!   ways through the [`NodeRemap`] permutation.
//! * **Reduce** — the graph is a [`Reduction`]'s output. External ids
//!   are *original* ids: query endpoints map through
//!   [`Reduction::to_reduced`] (which can fail — a contracted or pruned
//!   node cannot anchor a query), and result paths come back in
//!   original ids already because expansion chains store original ids,
//!   so the output direction is the identity.
//!
//! A reorder of a reduced graph is *not* a fourth case: it is folded
//! into the reduction offline ([`Reduction::remapped`]), keeping the
//! composition depth at one. See `DESIGN.md` §15.

use std::sync::Arc;

use crate::reduce::Reduction;
use crate::remap::NodeRemap;
use crate::types::NodeId;

/// How external node ids relate to the engine's node ids.
#[derive(Clone)]
pub enum IdTranslation {
    /// External ids are engine ids.
    Identity,
    /// A locality reorder: translate through the permutation.
    Remap(Arc<NodeRemap>),
    /// A graph reduction: external = original ids, engine = reduced ids.
    Reduce(Arc<Reduction>),
}

/// Why an external id cannot be translated to an engine id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// The id is outside the external id space.
    OutOfRange {
        /// The offending external id.
        node: NodeId,
        /// Size of the external id space.
        node_count: usize,
    },
    /// The node exists but was contracted or pruned away by reduction,
    /// so no engine node corresponds to it.
    Contracted {
        /// The offending external id.
        node: NodeId,
    },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::OutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            TranslateError::Contracted { node } => write!(
                f,
                "node {node} was contracted or pruned by graph reduction and cannot \
                 anchor a query (rebuild with --keep {node} to retain it)"
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

impl IdTranslation {
    /// The external id space size, `None` for [`IdTranslation::Identity`]
    /// (whose space is the engine graph's, unknown here).
    pub fn external_node_count(&self) -> Option<usize> {
        match self {
            IdTranslation::Identity => None,
            IdTranslation::Remap(r) => Some(r.len()),
            IdTranslation::Reduce(r) => Some(r.original_node_count()),
        }
    }

    /// True if no translation happens in either direction.
    pub fn is_identity(&self) -> bool {
        matches!(self, IdTranslation::Identity)
    }

    /// Translate an external id to the engine id space.
    pub fn to_engine(&self, external: NodeId) -> Result<NodeId, TranslateError> {
        match self {
            IdTranslation::Identity => Ok(external),
            IdTranslation::Remap(r) => r.to_internal(external).ok_or(TranslateError::OutOfRange {
                node: external,
                node_count: r.len(),
            }),
            IdTranslation::Reduce(r) => {
                if external as usize >= r.original_node_count() {
                    return Err(TranslateError::OutOfRange {
                        node: external,
                        node_count: r.original_node_count(),
                    });
                }
                r.to_reduced(external)
                    .ok_or(TranslateError::Contracted { node: external })
            }
        }
    }

    /// True if engine-produced *paths* need per-node translation before
    /// leaving the process. Reduction says no: expansion already emits
    /// original ids at materialize time.
    pub fn output_needs_remap(&self) -> bool {
        matches!(self, IdTranslation::Remap(_))
    }

    /// The remap to apply to output paths, if any.
    pub fn output_remap(&self) -> Option<&Arc<NodeRemap>> {
        match self {
            IdTranslation::Remap(r) => Some(r),
            _ => None,
        }
    }

    /// The reduction, if this translation is one.
    pub fn reduction(&self) -> Option<&Arc<Reduction>> {
        match self {
            IdTranslation::Reduce(r) => Some(r),
            _ => None,
        }
    }
}

impl std::fmt::Debug for IdTranslation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdTranslation::Identity => write!(f, "IdTranslation::Identity"),
            IdTranslation::Remap(r) => write!(f, "IdTranslation::Remap({} nodes)", r.len()),
            IdTranslation::Reduce(r) => write!(
                f,
                "IdTranslation::Reduce({} -> {} nodes)",
                r.original_node_count(),
                r.reduced_node_count()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::reduce::reduce;

    #[test]
    fn identity_passes_everything_through() {
        let t = IdTranslation::Identity;
        assert_eq!(t.to_engine(42), Ok(42));
        assert!(!t.output_needs_remap());
    }

    #[test]
    fn remap_translates_and_flags_output() {
        let remap = NodeRemap::from_old_to_new(vec![2, 0, 1]).unwrap();
        let t = IdTranslation::Remap(Arc::new(remap));
        assert_eq!(t.to_engine(0), Ok(2));
        assert_eq!(
            t.to_engine(9),
            Err(TranslateError::OutOfRange {
                node: 9,
                node_count: 3
            })
        );
        assert!(t.output_needs_remap());
    }

    #[test]
    fn reduce_rejects_contracted_nodes_but_output_is_identity() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(1, 2, 1).unwrap();
        let red = reduce(&b.build(), &[0], &[2]);
        let t = IdTranslation::Reduce(Arc::new(red.reduction));
        assert_eq!(t.to_engine(0), Ok(0));
        assert_eq!(t.to_engine(2), Ok(1));
        assert_eq!(t.to_engine(1), Err(TranslateError::Contracted { node: 1 }));
        assert_eq!(
            t.to_engine(7),
            Err(TranslateError::OutOfRange {
                node: 7,
                node_count: 3
            })
        );
        assert!(
            !t.output_needs_remap(),
            "expansion already emits original ids"
        );
    }
}
