//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building or parsing graphs and category files.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint is not a valid node id for the graph being built.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// Number of nodes in the graph.
        node_count: u64,
    },
    /// A parse error in an input file, with 1-based line number and message.
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => write!(
                f,
                "node id {node} out of range for a graph with {node_count} nodes"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            node_count: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = GraphError::Parse {
            line: 12,
            message: "bad arc".into(),
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("bad arc"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
