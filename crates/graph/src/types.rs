//! Fundamental scalar types shared across the workspace.

/// Identifier of a node (the paper's "physical node"), dense in `0..n`.
///
/// `u32` keeps hot arrays (CSR targets, predecessor arrays, heap positions)
/// half the size of `usize` on 64-bit targets, which matters for the
/// multi-million-node road networks of the paper's evaluation.
pub type NodeId = u32;

/// Weight of a single edge, `ω(u, v)` in the paper.
///
/// Non-negative by construction (it is unsigned); Dijkstra-family algorithms
/// in `kpj-sp` rely on this.
pub type Weight = u32;

/// Length of a path: the sum of its edge weights, `ω(P)` in the paper.
///
/// A simple path visits at most `n ≤ 2^32` nodes, each edge weighing at most
/// `2^32 − 1`, so the sum always fits in a `u64` with room to spare.
pub type Length = u64;

/// Sentinel for "no path": larger than any real path length.
///
/// Real lengths are at most `(2^32 − 1) · (2^32 − 1) < 2^64 − 1`, so
/// `u64::MAX` is unambiguous. Arithmetic on lengths should use
/// [`saturating_add`](u64::saturating_add) when a term may be infinite.
pub const INFINITE_LENGTH: Length = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_length_exceeds_any_real_path() {
        let max_real = (u32::MAX as Length) * (u32::MAX as Length);
        assert!(INFINITE_LENGTH > max_real);
    }

    #[test]
    fn saturating_add_keeps_infinity_infinite() {
        assert_eq!(INFINITE_LENGTH.saturating_add(42), INFINITE_LENGTH);
    }
}
