//! [`PathStore`]: a prefix-interned path arena.
//!
//! All deviation-paradigm algorithms (§3–§5 of the paper) build paths
//! incrementally: every candidate extends an already-known prefix by a
//! handful of nodes. Materializing each candidate as an owned
//! `Vec<NodeId>` therefore copies the shared prefix over and over — the
//! dominant constant factor of the hot path. The arena stores each path
//! as a *parent pointer* instead: a [`PathId`] names a slot holding
//! `(parent, node, length)`, so extending a path is one `push` and
//! sharing a prefix is free. Full node sequences are only produced at the
//! trust boundary via [`PathStore::materialize`] (or by walking
//! [`PathStore::parent`] chains directly).
//!
//! Lifecycle mirrors the epoch-stamped scratch in [`crate::scratch`]: the
//! engine owns one store, calls [`PathStore::reset`] at the start of every
//! query (truncate, keep capacity), and after warmup steady-state queries
//! push into already-allocated slots — zero heap allocations.

use crate::types::{Length, NodeId};

/// Handle to one interned path (an index into the owning [`PathStore`]).
///
/// Only meaningful together with the store that produced it, and only
/// until that store's next [`reset`](PathStore::reset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(u32);

/// Sentinel parent index for chain heads.
const NO_PARENT: u32 = u32::MAX;

/// Arena of parent-pointer path entries (struct-of-arrays).
///
/// ```
/// use kpj_graph::PathStore;
/// let mut store = PathStore::new();
/// let a = store.push(None, 3, 0); // chain head: path (3), length 0
/// let b = store.push(Some(a), 7, 4); // path (3, 7), length 4
/// assert_eq!(store.node(b), 7);
/// assert_eq!(store.length(b), 4);
/// assert_eq!(store.parent(b), Some(a));
/// assert_eq!(store.parent(a), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PathStore {
    parent: Vec<u32>,
    node: Vec<NodeId>,
    length: Vec<Length>,
}

impl PathStore {
    /// An empty store.
    pub fn new() -> PathStore {
        PathStore::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// Drop every entry, keeping the allocations. Invalidates all
    /// previously issued [`PathId`]s — call once per query, like
    /// [`TimestampedSet::clear`](crate::scratch::TimestampedSet::clear).
    pub fn reset(&mut self) {
        self.parent.clear();
        self.node.clear();
        self.length.clear();
    }

    /// Intern one entry: the path reaching `node` by extending `parent`
    /// (or starting fresh when `None`), with cumulative length `length`.
    ///
    /// # Panics
    /// Panics if the store grows past `u32::MAX` entries.
    pub fn push(&mut self, parent: Option<PathId>, node: NodeId, length: Length) -> PathId {
        let id = u32::try_from(self.node.len()).expect("PathStore overflow");
        self.parent.push(parent.map_or(NO_PARENT, |p| p.0));
        self.node.push(node);
        self.length.push(length);
        PathId(id)
    }

    /// The node this entry appends.
    pub fn node(&self, id: PathId) -> NodeId {
        self.node[id.0 as usize]
    }

    /// Cumulative length of the path ending at this entry.
    pub fn length(&self, id: PathId) -> Length {
        self.length[id.0 as usize]
    }

    /// The entry this one extends (`None` for chain heads).
    pub fn parent(&self, id: PathId) -> Option<PathId> {
        match self.parent[id.0 as usize] {
            NO_PARENT => None,
            p => Some(PathId(p)),
        }
    }

    /// Walk the chain tail → head, pushing each entry's node into `buf`
    /// (so `buf` receives the node sequence *reversed*). Returns the
    /// number of nodes pushed.
    pub fn extend_rev(&self, id: PathId, buf: &mut Vec<NodeId>) -> usize {
        let before = buf.len();
        let mut cur = Some(id);
        while let Some(c) = cur {
            buf.push(self.node(c));
            cur = self.parent(c);
        }
        buf.len() - before
    }

    /// Materialize the full chain ending at `id` as an owned
    /// [`Path`](crate::Path), head first. The bridge for replay files,
    /// the JSON wire format and everything else that wants a
    /// self-contained value.
    pub fn materialize(&self, id: PathId) -> crate::Path {
        let mut nodes = Vec::new();
        self.extend_rev(id, &mut nodes);
        nodes.reverse();
        crate::Path {
            nodes,
            length: self.length(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_walk() {
        let mut s = PathStore::new();
        let a = s.push(None, 0, 0);
        let b = s.push(Some(a), 1, 2);
        let c = s.push(Some(b), 2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.node(c), 2);
        assert_eq!(s.length(c), 5);
        assert_eq!(s.parent(c), Some(b));
        assert_eq!(s.parent(a), None);
        let mut buf = vec![9];
        assert_eq!(s.extend_rev(c, &mut buf), 3);
        assert_eq!(buf, vec![9, 2, 1, 0]);
    }

    #[test]
    fn materialize_produces_head_first_path() {
        let mut s = PathStore::new();
        let a = s.push(None, 4, 0);
        let b = s.push(Some(a), 2, 3);
        let p = s.materialize(b);
        assert_eq!(p.nodes, vec![4, 2]);
        assert_eq!(p.length, 3);
        let q = s.materialize(a);
        assert_eq!(q.nodes, vec![4]);
        assert_eq!(q.length, 0);
    }

    #[test]
    fn shared_prefixes_are_free() {
        let mut s = PathStore::new();
        let root = s.push(None, 0, 0);
        let left = s.push(Some(root), 1, 1);
        let right = s.push(Some(root), 2, 2);
        assert_eq!(s.materialize(left).nodes, vec![0, 1]);
        assert_eq!(s.materialize(right).nodes, vec![0, 2]);
        assert_eq!(s.len(), 3, "prefix stored once");
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut s = PathStore::new();
        for i in 0..100 {
            s.push(None, i, 0);
        }
        let cap = s.node.capacity();
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.node.capacity(), cap);
    }
}
