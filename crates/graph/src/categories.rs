//! Categories ("conceptual nodes") and the offline inverted index.
//!
//! The paper (§2) assumes "an inverted index is offline built on the
//! categories of nodes such that `V_T` can be efficiently retrieved online".
//! [`CategoryIndex`] is that index: a mapping from a [`CategoryId`] to the
//! sorted set of member nodes, plus the reverse mapping from a node to its
//! categories. A node may belong to any number of categories, and a
//! category may be empty.

use crate::types::NodeId;

/// Identifier of a category, dense in `0..category_count`.
pub type CategoryId = u32;

/// Offline inverted index: category → member nodes, node → categories.
#[derive(Debug, Clone, Default)]
pub struct CategoryIndex {
    /// `members[c]` is the sorted, deduplicated list of nodes in category `c`.
    members: Vec<Vec<NodeId>>,
    /// Optional display names, parallel to `members` (may be empty).
    names: Vec<String>,
}

impl CategoryIndex {
    /// An index with no categories.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a category with the given display name and member set; returns
    /// its id. Members are sorted and deduplicated.
    pub fn add_category(
        &mut self,
        name: impl Into<String>,
        mut members: Vec<NodeId>,
    ) -> CategoryId {
        members.sort_unstable();
        members.dedup();
        let id = self.members.len() as CategoryId;
        self.members.push(members);
        self.names.push(name.into());
        id
    }

    /// Number of categories.
    pub fn category_count(&self) -> usize {
        self.members.len()
    }

    /// The sorted member nodes `V_T` of category `c`.
    ///
    /// # Panics
    /// Panics if `c` is not a valid category id.
    pub fn members(&self, c: CategoryId) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Display name of category `c`.
    pub fn name(&self, c: CategoryId) -> &str {
        &self.names[c as usize]
    }

    /// Look a category up by its display name (linear scan; for tooling, not
    /// hot paths).
    pub fn find_by_name(&self, name: &str) -> Option<CategoryId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as CategoryId)
    }

    /// True if node `v` belongs to category `c` (binary search).
    pub fn contains(&self, c: CategoryId, v: NodeId) -> bool {
        self.members[c as usize].binary_search(&v).is_ok()
    }

    /// Iterate over `(id, name, members)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (CategoryId, &str, &[NodeId])> {
        self.members
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (m, n))| (i as CategoryId, n.as_str(), m.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sorts_and_dedups() {
        let mut idx = CategoryIndex::new();
        let c = idx.add_category("H", vec![7, 3, 7, 1]);
        assert_eq!(idx.members(c), &[1, 3, 7]);
        assert_eq!(idx.name(c), "H");
        assert_eq!(idx.category_count(), 1);
    }

    #[test]
    fn membership_queries() {
        let mut idx = CategoryIndex::new();
        let c = idx.add_category("Lake", vec![10, 20, 30]);
        assert!(idx.contains(c, 20));
        assert!(!idx.contains(c, 25));
    }

    #[test]
    fn empty_category_is_allowed() {
        let mut idx = CategoryIndex::new();
        let c = idx.add_category("Ghost", vec![]);
        assert!(idx.members(c).is_empty());
        assert!(!idx.contains(c, 0));
    }

    #[test]
    fn find_by_name_and_iter() {
        let mut idx = CategoryIndex::new();
        idx.add_category("Glacier", vec![1]);
        let lake = idx.add_category("Lake", vec![2, 3]);
        assert_eq!(idx.find_by_name("Lake"), Some(lake));
        assert_eq!(idx.find_by_name("Volcano"), None);
        let all: Vec<_> = idx
            .iter()
            .map(|(_, n, m)| (n.to_string(), m.len()))
            .collect();
        assert_eq!(
            all,
            vec![("Glacier".to_string(), 1), ("Lake".to_string(), 2)]
        );
    }

    #[test]
    fn node_may_belong_to_many_categories() {
        let mut idx = CategoryIndex::new();
        let a = idx.add_category("A", vec![5]);
        let b = idx.add_category("B", vec![5, 6]);
        assert!(idx.contains(a, 5));
        assert!(idx.contains(b, 5));
    }
}
