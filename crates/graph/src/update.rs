//! Edge-weight updates: derive a new immutable [`Graph`] from an existing
//! one with a batch of weight changes applied.
//!
//! A [`Graph`] never mutates in place — it may be backed by a read-only
//! memory mapping, and concurrent queries hold shared references into its
//! CSR arrays. Live weight updates therefore work copy-on-write: the
//! topology (offset arrays) is carried over unchanged, the edge arrays are
//! copied into fresh owned sections with the new weights spliced into
//! **both** the forward and reverse views, and the result is a brand-new
//! graph the service can publish as the next epoch while in-flight queries
//! finish on the old one.
//!
//! ## Parallel edges
//!
//! The format permits parallel `u → v` edges. Shortest-path computations
//! only ever observe the cheapest copy ([`Graph::edge_weight`] takes the
//! min), so an update addresses the *pair* `(u, v)` and sets every
//! parallel copy to the new weight — the only semantics under which the
//! forward and reverse views (and the distances derived from them) cannot
//! drift apart. The reported [`EdgeDelta::old_weight`] is accordingly the
//! pre-batch minimum over the copies, which is exactly the value distance
//! repair needs (see `kpj-landmark`).

use crate::csr::{EdgeRef, Graph};
use crate::types::{NodeId, Weight};

/// One requested weight change: set every `from → to` edge to `weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightUpdate {
    /// Tail of the edge.
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// The new weight.
    pub weight: Weight,
}

/// One applied change, with the before/after weights the incremental
/// distance-repair algorithms need (`old` is the pre-batch minimum over
/// parallel copies — the only weight shortest paths ever observed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Tail of the edge.
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// Effective weight before the batch.
    pub old_weight: Weight,
    /// Effective weight after the batch.
    pub new_weight: Weight,
}

/// Errors applying a weight-update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// An update references a node id outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An update references a `(from, to)` pair with no edge. Updates
    /// change weights only — they never create or delete topology, so an
    /// unknown edge is a caller error, not an upsert.
    NoSuchEdge {
        /// Tail of the missing edge.
        from: NodeId,
        /// Head of the missing edge.
        to: NodeId,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NodeOutOfRange { node, node_count } => write!(
                f,
                "update references node {node}, graph has {node_count} nodes"
            ),
            UpdateError::NoSuchEdge { from, to } => {
                write!(f, "no edge {from} -> {to} to update")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl Graph {
    /// Apply a batch of weight updates copy-on-write: returns a new graph
    /// with identical topology and the new weights in both CSR views,
    /// plus one [`EdgeDelta`] per distinct `(from, to)` pair actually
    /// changed (no-op updates — every copy of the pair already carries
    /// the new weight — are dropped; when a pair appears several times in
    /// one batch the last write wins and `old_weight` is still the
    /// pre-batch value). A delta may carry `old_weight == new_weight`:
    /// normalizing parallel copies to their current minimum changes no
    /// distance but does change the graph, and callers deciding whether
    /// to publish must treat it as a change.
    ///
    /// The batch is atomic: any invalid entry fails the whole call and
    /// `self` is untouched (it always is — this never mutates in place).
    pub fn with_updated_weights(
        &self,
        updates: &[WeightUpdate],
    ) -> Result<(Graph, Vec<EdgeDelta>), UpdateError> {
        let n = self.node_count();
        // Validate the whole batch before copying anything.
        for u in updates {
            for node in [u.from, u.to] {
                if node as usize >= n {
                    return Err(UpdateError::NodeOutOfRange {
                        node,
                        node_count: n,
                    });
                }
            }
            if self.edge_weight(u.from, u.to).is_none() {
                return Err(UpdateError::NoSuchEdge {
                    from: u.from,
                    to: u.to,
                });
            }
        }
        let (out_offsets, fwd, in_offsets, rev) = self.sections();
        let mut out_edges: Vec<EdgeRef> = fwd.to_vec();
        let mut in_edges: Vec<EdgeRef> = rev.to_vec();
        // Batches are small (tens to thousands); a linear-probe delta list
        // keeps this dependency-free and deterministic.
        let mut deltas: Vec<EdgeDelta> = Vec::new();
        for u in updates {
            match deltas.iter_mut().find(|d| d.from == u.from && d.to == u.to) {
                Some(d) => d.new_weight = u.weight,
                None => deltas.push(EdgeDelta {
                    from: u.from,
                    to: u.to,
                    // Pre-batch effective weight: min over parallel copies.
                    old_weight: self.edge_weight(u.from, u.to).expect("validated above"),
                    new_weight: u.weight,
                }),
            }
            let (fwd_lo, fwd_hi) = (
                out_offsets[u.from as usize] as usize,
                out_offsets[u.from as usize + 1] as usize,
            );
            let mut touched_fwd = 0usize;
            for e in &mut out_edges[fwd_lo..fwd_hi] {
                if e.to == u.to {
                    e.weight = u.weight;
                    touched_fwd += 1;
                }
            }
            let (rev_lo, rev_hi) = (
                in_offsets[u.to as usize] as usize,
                in_offsets[u.to as usize + 1] as usize,
            );
            let mut touched_rev = 0usize;
            for e in &mut in_edges[rev_lo..rev_hi] {
                if e.to == u.from {
                    e.weight = u.weight;
                    touched_rev += 1;
                }
            }
            // Both views enumerate the same edge multiset, so the copy
            // counts must agree; `from_sections` validated that at load.
            debug_assert_eq!(touched_fwd, touched_rev);
            debug_assert!(touched_fwd > 0, "edge existence validated above");
        }
        // A delta is real when any *copy* of the pair changed, not merely
        // the effective minimum: normalizing parallel copies {2, 9} to 2
        // leaves every distance intact but is still observable — k-shortest
        // enumeration walks the raw adjacency, so the non-min copy's paths
        // change length. Such deltas carry `old_weight == new_weight`
        // (effective no-op) and distance repair skips them; callers must
        // still publish the new graph.
        deltas.retain(|d| {
            let (lo, hi) = (
                out_offsets[d.from as usize] as usize,
                out_offsets[d.from as usize + 1] as usize,
            );
            out_edges[lo..hi]
                .iter()
                .zip(&fwd[lo..hi])
                .any(|(new, old)| new.to == d.to && new.weight != old.weight)
        });
        let graph = Graph::from_csr(
            out_offsets.to_vec().into_boxed_slice(),
            out_edges.into_boxed_slice(),
            in_offsets.to_vec().into_boxed_slice(),
            in_edges.into_boxed_slice(),
        );
        Ok((graph, deltas))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1 (2), 0 -> 2 (5), 1 -> 3 (2), 2 -> 3 (1), parallel 0 -> 1 (9)
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(0, 2, 5).unwrap();
        b.add_edge(1, 3, 2).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.add_edge(0, 1, 9).unwrap();
        b.build()
    }

    #[test]
    fn updates_both_views_and_reports_deltas() {
        let g = diamond();
        let (g2, deltas) = g
            .with_updated_weights(&[WeightUpdate {
                from: 0,
                to: 2,
                weight: 1,
            }])
            .unwrap();
        assert_eq!(g.edge_weight(0, 2), Some(5), "original untouched");
        assert_eq!(g2.edge_weight(0, 2), Some(1));
        assert!(g2.in_edges(2).iter().any(|e| e.to == 0 && e.weight == 1));
        assert_eq!(
            deltas,
            vec![EdgeDelta {
                from: 0,
                to: 2,
                old_weight: 5,
                new_weight: 1
            }]
        );
        // Topology is untouched.
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.sections().0, g2.sections().0);
    }

    #[test]
    fn parallel_copies_all_change_together() {
        let g = diamond();
        let (g2, deltas) = g
            .with_updated_weights(&[WeightUpdate {
                from: 0,
                to: 1,
                weight: 4,
            }])
            .unwrap();
        let copies: Vec<Weight> = g2
            .out_edges(0)
            .iter()
            .filter(|e| e.to == 1)
            .map(|e| e.weight)
            .collect();
        assert_eq!(copies, vec![4, 4]);
        let rev: Vec<Weight> = g2
            .in_edges(1)
            .iter()
            .filter(|e| e.to == 0)
            .map(|e| e.weight)
            .collect();
        assert_eq!(rev, vec![4, 4]);
        // old_weight is the pre-batch minimum (2), not either raw copy.
        assert_eq!(deltas[0].old_weight, 2);
        assert_eq!(deltas[0].new_weight, 4);
    }

    #[test]
    fn last_write_wins_and_noops_are_dropped() {
        let g = diamond();
        let batch = [
            WeightUpdate {
                from: 1,
                to: 3,
                weight: 7,
            },
            WeightUpdate {
                from: 1,
                to: 3,
                weight: 2, // back to the original weight
            },
        ];
        let (g2, deltas) = g.with_updated_weights(&batch).unwrap();
        assert_eq!(g2.edge_weight(1, 3), Some(2));
        assert!(deltas.is_empty(), "net no-op produces no delta");
    }

    #[test]
    fn normalizing_parallel_copies_to_the_min_is_still_a_change() {
        // 0 -> 1 has copies {2, 9}; setting the pair to 2 leaves the
        // effective (min) weight at 2 but rewrites the 9-copy, which
        // k-shortest enumeration observes — the delta must survive so the
        // caller publishes the new graph.
        let g = diamond();
        let (g2, deltas) = g
            .with_updated_weights(&[WeightUpdate {
                from: 0,
                to: 1,
                weight: 2,
            }])
            .unwrap();
        assert_eq!(
            deltas,
            vec![EdgeDelta {
                from: 0,
                to: 1,
                old_weight: 2,
                new_weight: 2
            }]
        );
        let copies: Vec<Weight> = g2
            .out_edges(0)
            .iter()
            .filter(|e| e.to == 1)
            .map(|e| e.weight)
            .collect();
        assert_eq!(copies, vec![2, 2]);
        // A single-copy pair set to its current weight stays a true no-op.
        let (_, deltas) = g
            .with_updated_weights(&[WeightUpdate {
                from: 0,
                to: 2,
                weight: 5,
            }])
            .unwrap();
        assert!(deltas.is_empty());
    }

    #[test]
    fn rejects_missing_edges_and_bad_nodes() {
        let g = diamond();
        assert_eq!(
            g.with_updated_weights(&[WeightUpdate {
                from: 3,
                to: 0,
                weight: 1
            }])
            .unwrap_err(),
            UpdateError::NoSuchEdge { from: 3, to: 0 }
        );
        assert_eq!(
            g.with_updated_weights(&[WeightUpdate {
                from: 9,
                to: 0,
                weight: 1
            }])
            .unwrap_err(),
            UpdateError::NodeOutOfRange {
                node: 9,
                node_count: 4
            }
        );
    }
}
