//! Compact binary (de)serialization for [`Graph`].
//!
//! The repro harness regenerates multi-million-node synthetic datasets and
//! landmark tables; caching them between runs needs a format that loads at
//! memory speed. This is a trivial little-endian dump of the CSR arrays
//! with a magic/version header — byte-for-byte reproducible, no external
//! dependencies, bounds-checked on load.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 bytes  "KPJGRAPH"
//! version u32      1
//! n       u64      node count
//! m       u64      edge count
//! out_offsets  (n+1) × u32
//! out_edges    m × (u32 to, u32 weight)
//! ```
//!
//! The reverse CSR is rebuilt on load (cheaper than storing it).

use std::io::{BufReader, BufWriter, Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

const MAGIC: &[u8; 8] = b"KPJGRAPH";
const VERSION: u32 = 1;

/// Serialize `g` into `w` (see the module docs for the layout).
pub fn write_binary<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(g.node_count() as u64).to_le_bytes())?;
    w.write_all(&(g.edge_count() as u64).to_le_bytes())?;
    let mut offset = 0u32;
    w.write_all(&offset.to_le_bytes())?;
    for u in g.nodes() {
        offset += g.out_degree(u) as u32;
        w.write_all(&offset.to_le_bytes())?;
    }
    for u in g.nodes() {
        for e in g.out_edges(u) {
            w.write_all(&e.to.to_le_bytes())?;
            w.write_all(&e.weight.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Deserialize a graph written by [`write_binary`].
pub fn read_binary<R: Read>(r: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic (not a kpj graph file)"));
    }
    let version = read_u32(&mut r)?;
    if version == 2 {
        return Err(bad(
            "this is a v2 (mmap) graph file; open it with kpj-store \
             (kpj-serve --graph-bin / kpj-cli handle both versions)",
        ));
    }
    if version != VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    if n >= u32::MAX as usize || m > u32::MAX as usize {
        return Err(bad("graph too large for u32 id space"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u32(&mut r)?);
    }
    if offsets[0] != 0 || offsets[n] as usize != m {
        return Err(bad("corrupt offset array"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("offsets not monotone"));
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    for u in 0..n {
        let deg = (offsets[u + 1] - offsets[u]) as usize;
        for _ in 0..deg {
            let to = read_u32(&mut r)?;
            let weight = read_u32(&mut r)?;
            b.add_edge(u as u32, to, weight)
                .map_err(|e| bad(&format!("edge out of range: {e}")))?;
        }
    }
    Ok(b.build())
}

fn bad(message: &str) -> GraphError {
    GraphError::Parse {
        line: 0,
        message: message.to_string(),
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 10).unwrap();
        b.add_edge(1, 2, 20).unwrap();
        b.add_bidirectional(2, 4, 30).unwrap();
        b.add_edge(4, 0, 40).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for u in g.nodes() {
            assert_eq!(g.out_edges(u), g2.out_edges(u));
            assert_eq!(g.in_edges(u), g2.in_edges(u));
        }
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.node_count(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_binary(&b"not a graph"[..]).is_err());
        assert!(
            read_binary(&b"KPJGRAPH\x63\x00\x00\x00"[..]).is_err(),
            "bad version"
        );
        // Truncated file.
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupt_offsets() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Flip an offset byte to break monotonicity.
        let off_start = 8 + 4 + 8 + 8;
        buf[off_start + 7] = 0xFF;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_edge_target() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Overwrite the first edge target with a huge id.
        let edges_start = 8 + 4 + 8 + 8 + (5 + 1) * 4;
        buf[edges_start..edges_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_binary(buf.as_slice()).is_err());
    }
}
