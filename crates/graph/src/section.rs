//! Storage-backed slices: owned or memory-mapped.
//!
//! The v2 binary format (see `kpj-store`) maps CSR arrays straight out of a
//! file instead of parsing them onto the heap. [`SectionBuf`] is the seam
//! that makes this transparent to every consumer: a `SectionBuf<T>` derefs
//! to `&[T]` whether the bytes live in a `Box<[T]>` built by
//! [`GraphBuilder`](crate::GraphBuilder) or in a page-aligned region of an
//! mmap'd file kept alive by a shared owner handle.
//!
//! Only plain-old-data element types are usable with the mapped variant
//! (`u32`, `u64`, [`EdgeRef`](crate::EdgeRef) — all `#[repr(C)]`,
//! any-bit-pattern-valid types); the unsafe constructor documents the
//! contract.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A read-only slice of `T` backed either by owned heap memory or by a
/// borrowed region of a memory-mapped file.
///
/// Cloning is cheap for the mapped variant (bumps the owner's refcount) and
/// a full copy for the owned variant — graphs are shared via `Arc<Graph>`
/// on every hot path, so owned clones only happen in tests and tools.
pub struct SectionBuf<T: 'static> {
    inner: Inner<T>,
}

enum Inner<T: 'static> {
    Owned(Box<[T]>),
    Mapped {
        ptr: *const T,
        len: usize,
        /// Keeps the mapping (or other backing storage) alive; dropped last.
        owner: Arc<dyn Any + Send + Sync>,
    },
}

// SAFETY: the mapped variant is a read-only view of immutable memory whose
// lifetime is pinned by `owner` (an `Arc`, itself `Send + Sync`). Sharing or
// sending the view across threads is therefore exactly as safe as sharing
// `&[T]` — sound for `T: Send + Sync`.
unsafe impl<T: Send + Sync + 'static> Send for SectionBuf<T> {}
unsafe impl<T: Send + Sync + 'static> Sync for SectionBuf<T> {}

impl<T: 'static> SectionBuf<T> {
    /// An empty owned buffer.
    pub fn empty() -> Self {
        SectionBuf {
            inner: Inner::Owned(Box::new([])),
        }
    }

    /// Wrap a raw region of backing storage without copying.
    ///
    /// # Safety
    ///
    /// The caller must guarantee, for as long as any clone of `owner` is
    /// alive:
    ///
    /// * `ptr` is non-null, aligned for `T`, and valid for reads of
    ///   `len * size_of::<T>()` bytes;
    /// * the memory is initialized and never mutated (e.g. a `PROT_READ`,
    ///   `MAP_PRIVATE` mapping);
    /// * every bit pattern of the underlying bytes is a valid `T`
    ///   (plain-old-data types only — no references, no niches).
    pub unsafe fn from_raw_parts(
        ptr: *const T,
        len: usize,
        owner: Arc<dyn Any + Send + Sync>,
    ) -> Self {
        debug_assert!(!ptr.is_null());
        debug_assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0);
        SectionBuf {
            inner: Inner::Mapped { ptr, len, owner },
        }
    }

    /// True if this buffer borrows a mapped region rather than owning heap
    /// memory (used by tests asserting the zero-copy property).
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// The slice view.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(b) => b,
            // SAFETY: upheld by the `from_raw_parts` contract; `owner` is
            // alive because `self` holds it.
            Inner::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: 'static> Deref for SectionBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: 'static> From<Box<[T]>> for SectionBuf<T> {
    fn from(b: Box<[T]>) -> Self {
        SectionBuf {
            inner: Inner::Owned(b),
        }
    }
}

impl<T: 'static> From<Vec<T>> for SectionBuf<T> {
    fn from(v: Vec<T>) -> Self {
        SectionBuf {
            inner: Inner::Owned(v.into_boxed_slice()),
        }
    }
}

impl<T: Clone + 'static> Clone for SectionBuf<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(b) => SectionBuf {
                inner: Inner::Owned(b.clone()),
            },
            Inner::Mapped { ptr, len, owner } => SectionBuf {
                inner: Inner::Mapped {
                    ptr: *ptr,
                    len: *len,
                    owner: Arc::clone(owner),
                },
            },
        }
    }
}

impl<T: fmt::Debug + 'static> fmt::Debug for SectionBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SectionBuf")
            .field("mapped", &self.is_mapped())
            .field("len", &self.as_slice().len())
            .finish()
    }
}

impl<T: PartialEq + 'static> PartialEq for SectionBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq + 'static> Eq for SectionBuf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip() {
        let b: SectionBuf<u32> = vec![1, 2, 3].into();
        assert_eq!(&*b, &[1, 2, 3]);
        assert!(!b.is_mapped());
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn mapped_view_tracks_owner() {
        // Simulate a mapping with a heap buffer owned by an Arc.
        let backing: Arc<Vec<u32>> = Arc::new(vec![10, 20, 30, 40]);
        let owner: Arc<dyn Any + Send + Sync> = backing.clone();
        let buf = unsafe { SectionBuf::from_raw_parts(backing.as_ptr().add(1), 2, owner) };
        assert!(buf.is_mapped());
        assert_eq!(&*buf, &[20, 30]);
        let clone = buf.clone();
        drop(buf);
        assert_eq!(&*clone, &[20, 30]);
        assert_eq!(Arc::strong_count(&backing), 2); // backing + clone's owner
    }

    #[test]
    fn empty_buffer() {
        let b: SectionBuf<u64> = SectionBuf::empty();
        assert!(b.is_empty());
        assert!(!b.is_mapped());
    }
}
