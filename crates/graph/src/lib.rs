//! Graph substrate for the `kpj` workspace.
//!
//! This crate provides the data structures every KPJ algorithm is built on:
//!
//! * [`Graph`] — an immutable, CSR-encoded, weighted directed graph with an
//!   eagerly built reverse view ([`Graph::in_edges`]).
//! * [`GraphBuilder`] — the mutable builder used to construct a [`Graph`].
//! * [`CategoryIndex`] — the inverted index from categories (the paper's
//!   "conceptual nodes") to the physical nodes that belong to them.
//! * [`Path`] — a node sequence plus its length, with validation helpers.
//! * [`scratch`] — epoch-stamped scratch arrays (`TimestampedSet`,
//!   `TimestampedMap`) that let per-query searches run without clearing
//!   `O(n)` state between queries.
//! * [`io`] — readers/writers for the DIMACS `.gr` format used by the
//!   paper's datasets, plus a small text format for category files.
//!
//! Design notes (see `DESIGN.md` at the workspace root):
//!
//! * Node identifiers are plain `u32` ([`NodeId`]); edge weights are `u32`
//!   ([`Weight`]); path lengths are `u64` ([`Length`]) so that summing up to
//!   `2^32` maximal weights cannot overflow.
//! * The CSR arrays are [`SectionBuf`]s — owned boxed slices when built in
//!   memory, zero-copy views into an mmap'd v2 file when opened via
//!   `kpj-store`. Either way a graph never reallocates after construction
//!   and is cheap to share by reference across algorithms.

#![warn(missing_docs)]

mod binary;
mod builder;
mod categories;
mod csr;
mod error;
pub mod io;
mod path;
mod pathset;
mod reduce;
mod remap;
pub mod scratch;
mod section;
mod store;
mod translate;
mod types;
mod update;

pub use builder::GraphBuilder;
pub use categories::{CategoryId, CategoryIndex};
pub use csr::{EdgeRef, Graph};
pub use error::GraphError;
pub use path::Path;
pub use pathset::{PathRef, PathSet, PathSetIter};
pub use reduce::{
    reduce, ReduceError, Reduced, Reduction, ReductionSections, TranslatedUpdates, REDUCED_REMOVED,
};
pub use remap::NodeRemap;
pub use section::SectionBuf;
pub use store::{PathId, PathStore};
pub use translate::{IdTranslation, TranslateError};
pub use types::{Length, NodeId, Weight, INFINITE_LENGTH};
pub use update::{EdgeDelta, UpdateError, WeightUpdate};
