//! v2 round-trip, corruption-rejection, and reorder-invariance tests.

use std::io::Cursor;
use std::path::PathBuf;

use kpj_graph::{CategoryIndex, Graph, GraphBuilder, NodeRemap};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_sp::DenseDijkstra;
use kpj_store::{open_any, open_v2, reorder, write_store, StoreError, StreamWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kpj-store-test-{}-{tag}.kpj", std::process::id()))
}

fn random_graph(n: u32, edges: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n as usize);
    for _ in 0..edges {
        b.add_edge(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(1..100),
        )
        .unwrap();
    }
    b.build()
}

fn symmetric_graph(n: u32, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n as usize);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        b.add_bidirectional(u, v, rng.gen_range(1..50)).unwrap();
    }
    b.build()
}

fn assert_same_adjacency(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for u in a.nodes() {
        assert_eq!(a.out_edges(u), b.out_edges(u), "out adjacency of {u}");
        assert_eq!(a.in_edges(u), b.in_edges(u), "in adjacency of {u}");
    }
}

fn write_to_file(
    path: &PathBuf,
    g: &Graph,
    cats: Option<&CategoryIndex>,
    lm: Option<&LandmarkIndex>,
    remap: Option<&NodeRemap>,
) {
    let f = std::fs::File::create(path).unwrap();
    write_store(f, g, cats, lm, remap, None).unwrap();
}

#[test]
fn asymmetric_roundtrip_is_zero_copy_and_identical() {
    let g = random_graph(200, 900, 7);
    let path = tmp_path("asym");
    write_to_file(&path, &g, None, None, None);

    let bundle = open_v2(&path).unwrap();
    assert!(bundle.is_mapped());
    assert!(
        bundle.graph.is_fully_mapped(),
        "CSR sections must be mmap views, not heap copies"
    );
    assert_same_adjacency(&g, &bundle.graph);
    bundle.verify_data().unwrap();
    assert!(bundle.categories.is_none());
    assert!(bundle.landmarks.is_none());
    assert!(bundle.remap.is_none());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn symmetric_graph_elides_reverse_sections() {
    let g = symmetric_graph(120, 3);
    let path = tmp_path("sym");
    write_to_file(&path, &g, None, None, None);

    // The reverse CSR must come from the file (aliased), never rebuilt.
    let bundle = open_v2(&path).unwrap();
    assert!(bundle.graph.is_fully_mapped());
    assert_same_adjacency(&g, &bundle.graph);

    // And the file must actually be smaller than the asymmetric encoding.
    let sym_len = std::fs::metadata(&path).unwrap().len();
    let ga = random_graph(120, g.edge_count(), 3);
    let path_a = tmp_path("sym-ref");
    write_to_file(&path_a, &ga, None, None, None);
    let asym_len = std::fs::metadata(&path_a).unwrap().len();
    assert!(
        sym_len < asym_len,
        "symmetric file ({sym_len}) not smaller than asymmetric ({asym_len})"
    );
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&path_a).unwrap();
}

#[test]
fn sidecar_sections_roundtrip() {
    let g = symmetric_graph(80, 11);
    let mut cats = CategoryIndex::new();
    cats.add_category("hotel", vec![3, 9, 27]);
    cats.add_category("fuel", vec![1, 2, 70]);
    cats.add_category("empty", vec![]);
    let lm = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 5);
    let reordered = reorder(&g);

    let path = tmp_path("sidecar");
    write_to_file(&path, &g, Some(&cats), Some(&lm), Some(&reordered.remap));
    let bundle = open_v2(&path).unwrap();
    bundle.verify_data().unwrap();

    let rcats = bundle.categories.unwrap();
    assert_eq!(rcats.category_count(), 3);
    assert_eq!(rcats.name(0), "hotel");
    assert_eq!(rcats.members(0), &[3, 9, 27]);
    assert_eq!(rcats.members(2), &[] as &[u32]);

    let rlm = bundle.landmarks.unwrap();
    assert!(rlm.is_mapped(), "landmark tables must be mapped zero-copy");
    assert_eq!(rlm, lm);

    let rremap = bundle.remap.unwrap();
    assert_eq!(rremap, reordered.remap);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_and_tiny_graphs_roundtrip() {
    for (n, tag) in [(0u32, "n0"), (1, "n1")] {
        let g = GraphBuilder::new(n as usize).build();
        let path = tmp_path(tag);
        write_to_file(&path, &g, None, None, None);
        let bundle = open_v2(&path).unwrap();
        assert_eq!(bundle.graph.node_count(), n as usize);
        assert_eq!(bundle.graph.edge_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn open_any_reads_v1_and_v2() {
    let g = random_graph(60, 200, 1);
    let v1 = tmp_path("anyv1");
    let f = std::fs::File::create(&v1).unwrap();
    kpj_graph::io::write_binary(&g, f).unwrap();
    let b1 = open_any(&v1).unwrap();
    assert!(!b1.is_mapped());
    // v1 rebuilds the reverse CSR from scratch, which can order a node's
    // in-adjacency differently; compare out-adjacency exactly and
    // in-adjacency as a multiset.
    assert_eq!(g.node_count(), b1.graph.node_count());
    for u in g.nodes() {
        assert_eq!(g.out_edges(u), b1.graph.out_edges(u));
        let mut a: Vec<_> = g.in_edges(u).to_vec();
        let mut b: Vec<_> = b1.graph.in_edges(u).to_vec();
        a.sort_unstable_by_key(|e| (e.to, e.weight));
        b.sort_unstable_by_key(|e| (e.to, e.weight));
        assert_eq!(a, b, "in adjacency multiset of {u}");
    }

    let v2 = tmp_path("anyv2");
    write_to_file(&v2, &g, None, None, None);
    let b2 = open_any(&v2).unwrap();
    assert!(b2.is_mapped());
    assert_same_adjacency(&g, &b2.graph);

    std::fs::remove_file(&v1).unwrap();
    std::fs::remove_file(&v2).unwrap();
}

#[test]
fn v1_reader_rejects_v2_with_guidance() {
    let g = random_graph(20, 40, 2);
    let path = tmp_path("v1guard");
    write_to_file(&path, &g, None, None, None);
    let err = kpj_graph::io::read_binary(std::fs::File::open(&path).unwrap()).unwrap_err();
    assert!(
        err.to_string().contains("kpj-store"),
        "v1 reader should point at the v2 loader: {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

fn v2_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Cursor::new(Vec::new());
    write_store(&mut buf, g, None, None, None, None).unwrap();
    buf.into_inner()
}

fn open_bytes(bytes: &[u8], tag: &str) -> Result<kpj_store::StoreBundle, StoreError> {
    let path = tmp_path(tag);
    std::fs::write(&path, bytes).unwrap();
    let r = open_v2(&path);
    std::fs::remove_file(&path).unwrap();
    r
}

#[test]
fn corrupt_files_are_rejected_precisely() {
    let g = random_graph(50, 220, 9);
    let bytes = v2_bytes(&g);

    // Truncation at several depths (the final cut removes more than the
    // ≤63 bytes of tail padding, so it always bites into a payload).
    for cut in [4usize, 40, 70, bytes.len() / 2, bytes.len() - 64] {
        let r = open_bytes(&bytes[..cut], &format!("trunc{cut}"));
        assert!(
            matches!(r, Err(StoreError::Truncated { .. })),
            "cut at {cut}: {r:?}"
        );
    }

    // Bad magic.
    let mut b = bytes.clone();
    b[0] ^= 0xFF;
    assert!(matches!(open_bytes(&b, "magic"), Err(StoreError::BadMagic)));

    // Unsupported version.
    let mut b = bytes.clone();
    b[8] = 99;
    assert!(matches!(
        open_bytes(&b, "ver"),
        Err(StoreError::UnsupportedVersion(99))
    ));

    // Corrupt header (n) → meta checksum catches it.
    let mut b = bytes.clone();
    b[16] ^= 0x01;
    assert!(matches!(
        open_bytes(&b, "meta"),
        Err(StoreError::ChecksumMismatch { which: "meta", .. })
    ));

    // Corrupt section payload → open succeeds (lazy), verify_data catches it.
    let mut b = bytes.clone();
    let last = b.len() - 1;
    b[last] ^= 0x40; // inside the final section payload or its padding
                     // Flip a byte that is definitely payload: the first out_offsets entry
                     // lives at the first 64-aligned offset past the table.
    let first_section = {
        let count = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        (64 + count * 24).div_ceil(64) * 64
    };
    let mut b = bytes.clone();
    b[first_section + 2] ^= 0x10;
    match open_bytes(&b, "data") {
        Ok(bundle) => {
            let err = bundle.verify_data().unwrap_err();
            assert!(matches!(
                err,
                StoreError::ChecksumMismatch { which: "data", .. }
            ));
        }
        // Some flips break a structural invariant instead — also a rejection.
        Err(e) => assert!(matches!(e, StoreError::Graph(_)), "unexpected: {e}"),
    }

    // Misaligned section offset (patch table entry + recompute meta checksum).
    let mut b = bytes.clone();
    let entry0_offset = 64 + 8; // first table entry's offset field
    let old = u64::from_le_bytes(b[entry0_offset..entry0_offset + 8].try_into().unwrap());
    b[entry0_offset..entry0_offset + 8].copy_from_slice(&(old + 4).to_le_bytes());
    rewrite_meta_checksum(&mut b);
    assert!(matches!(
        open_bytes(&b, "misalign"),
        Err(StoreError::Misaligned { .. })
    ));

    // Section past EOF.
    let mut b = bytes.clone();
    b[entry0_offset..entry0_offset + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    rewrite_meta_checksum(&mut b);
    assert!(matches!(
        open_bytes(&b, "eof"),
        Err(StoreError::Truncated { .. })
    ));

    // Duplicate section id.
    let mut b = bytes.clone();
    let entry1_id = 64 + 24;
    let id0 = b[64];
    b[entry1_id] = id0;
    rewrite_meta_checksum(&mut b);
    assert!(matches!(
        open_bytes(&b, "dup"),
        Err(StoreError::DuplicateSection(_))
    ));

    // Missing required section (retag out_edges as an unknown id).
    let mut b = bytes;
    b[entry1_id] = 200;
    rewrite_meta_checksum(&mut b);
    assert!(matches!(
        open_bytes(&b, "missing"),
        Err(StoreError::MissingSection(_))
    ));
}

#[test]
fn truncation_mid_section_table_is_a_precise_error() {
    // An asymmetric graph writes 4 sections, so the section table spans
    // [64, 160). Cutting inside it (not merely inside a payload) must
    // produce `Truncated` with the exact need/have byte counts — not a
    // panic, not a checksum error, and no partially-built bundle.
    let g = random_graph(30, 120, 11);
    let bytes = v2_bytes(&g);
    let count = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as u64;
    assert_eq!(count, 4, "asymmetric store should declare 4 sections");
    let table_end = 64 + count * 24;

    // Mid-entry (half-way through entry 1) and on an entry boundary but
    // before the declared end.
    for cut in [64 + 24 + 12, 64 + 3 * 24] {
        match open_bytes(&bytes[..cut as usize], &format!("midtable{cut}")) {
            Err(StoreError::Truncated { need, have }) => {
                assert_eq!(need, table_end, "cut {cut}: need must be the table end");
                assert_eq!(have, cut, "cut {cut}: have must be the file length");
            }
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }

    // One byte short of the complete table: still the same precise error.
    match open_bytes(&bytes[..table_end as usize - 1], "midtable-last") {
        Err(StoreError::Truncated { need, have }) => {
            assert_eq!(need, table_end);
            assert_eq!(have, table_end - 1);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

/// Recompute and patch the meta checksum after editing header/table bytes
/// (mirrors the writer, so tests can forge structurally-bad-but-signed files).
fn rewrite_meta_checksum(bytes: &mut [u8]) {
    let count = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
    let mut fnv = kpj_store::Fnv64::new();
    fnv.update(&bytes[0..40]);
    fnv.update(&bytes[64..64 + count * 24]);
    let h = fnv.finish();
    bytes[40..48].copy_from_slice(&h.to_le_bytes());
}

#[test]
fn stream_writer_matches_write_store() {
    // A symmetric graph emitted through both paths must produce files the
    // reader sees identically (byte-for-byte apart from nothing, in fact).
    let g = symmetric_graph(90, 21);
    let whole = v2_bytes(&g);

    let mut buf = Cursor::new(Vec::new());
    let n = g.node_count() as u64;
    let m = g.edge_count() as u64;
    let mut sw = StreamWriter::new(&mut buf, n, m).unwrap();
    for u in g.nodes() {
        sw.push_degree(g.out_degree(u) as u32).unwrap();
    }
    sw.finish_degrees().unwrap();
    for u in g.nodes() {
        for e in g.out_edges(u) {
            sw.push_edge(e.to, e.weight).unwrap();
        }
    }
    sw.finish().unwrap();
    assert_eq!(
        buf.into_inner(),
        whole,
        "streamed bytes differ from whole-graph writer"
    );
}

#[test]
fn reorder_preserves_structure_and_distances() {
    let g = symmetric_graph(150, 33);
    let r = reorder(&g);
    assert_eq!(r.graph.node_count(), g.node_count());
    assert_eq!(r.graph.edge_count(), g.edge_count());
    assert!(!r.remap.is_identity() || g.node_count() <= 1);

    // Degrees are permuted, distances are preserved under the mapping.
    for old in g.nodes() {
        let new = r.remap.to_internal(old).unwrap();
        assert_eq!(g.out_degree(old), r.graph.out_degree(new));
        assert_eq!(g.in_degree(old), r.graph.in_degree(new));
    }
    let d_old = DenseDijkstra::from_source(&g, 0);
    let d_new = DenseDijkstra::from_source(&r.graph, r.remap.to_internal(0).unwrap());
    for old in g.nodes() {
        assert_eq!(
            d_old.dist(old),
            d_new.dist(r.remap.to_internal(old).unwrap()),
            "distance to {old} changed under reorder"
        );
    }

    // Deterministic: same graph, same permutation.
    let r2 = reorder(&g);
    assert_eq!(r.remap, r2.remap);
}

#[test]
fn reorder_improves_bfs_locality() {
    // On a shuffled-id graph, BFS reorder must make adjacent ids closer.
    let g = symmetric_graph(400, 5);
    let r = reorder(&g);
    let spread = |g: &Graph| -> u64 {
        let mut total = 0u64;
        for u in g.nodes() {
            for e in g.out_edges(u) {
                total += (e.to as i64 - u as i64).unsigned_abs();
            }
        }
        total
    };
    let before = spread(&g);
    let after = spread(&r.graph);
    assert!(
        after <= before,
        "id spread grew under BFS reorder: {before} -> {after}"
    );
}

#[test]
fn remapped_landmarks_give_identical_bounds() {
    let g = symmetric_graph(100, 8);
    let lm = LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, 2);
    let r = reorder(&g);
    let lm2 = kpj_store::remap_landmarks(&lm, &r.remap);
    for old_u in g.nodes() {
        for old_v in g.nodes() {
            let new_u = r.remap.to_internal(old_u).unwrap();
            let new_v = r.remap.to_internal(old_v).unwrap();
            assert_eq!(
                lm.lower_bound(old_u, old_v),
                lm2.lower_bound(new_u, new_v),
                "bound changed for ({old_u},{old_v})"
            );
        }
    }
}

#[test]
fn reduction_sections_roundtrip_zero_copy() {
    // A corridor-heavy graph: reduce, write with the reduction sections,
    // reopen, and the loaded (mapped) reduction must behave identically.
    let mut b = GraphBuilder::new(12);
    for i in 0..11u32 {
        b.add_bidirectional(i, i + 1, i + 1).unwrap();
    }
    let g = b.build();
    let red = kpj_graph::reduce(&g, &[0], &[11]);
    let lm = LandmarkIndex::build(&red.graph, 2, SelectionStrategy::Farthest, 1);

    let path = tmp_path("reduce");
    kpj_store::write_store_to_path(
        &path,
        &red.graph,
        None,
        Some(&lm),
        None,
        Some(&red.reduction),
    )
    .unwrap();
    let bundle = open_v2(&path).unwrap();
    bundle.verify_data().unwrap();
    let loaded = bundle.reduction.expect("reduction sections present");
    assert!(loaded.is_fully_mapped(), "reduction must load zero-copy");
    assert_eq!(loaded, red.reduction);
    assert_same_adjacency(&red.graph, &bundle.graph);
    let mut want = Vec::new();
    let mut got = Vec::new();
    red.reduction.expand_path(&red.graph, &[0, 1], &mut want);
    loaded.expand_path(&bundle.graph, &[0, 1], &mut got);
    assert_eq!(want, got);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn reduction_folded_through_reorder_keeps_expansions() {
    // reduce → reorder the reduced graph → fold via remap_reduction →
    // write → reopen: queries on the file see reordered reduced ids but
    // expansion still yields original ids.
    let g = symmetric_graph(60, 13);
    let sources = [0u32, 7];
    let targets = [3u32, 55];
    let keep: Vec<u32> = sources.iter().chain(&targets).copied().collect();
    let red = kpj_graph::reduce(&g, &sources, &targets);
    let r = reorder(&red.graph);
    let folded = kpj_store::remap_reduction(&red.reduction, &red.graph, &r);

    let path = tmp_path("reduce-reorder");
    kpj_store::write_store_to_path(&path, &r.graph, None, None, None, Some(&folded)).unwrap();
    let bundle = open_v2(&path).unwrap();
    assert!(bundle.remap.is_none(), "reduced files carry no remap");
    let loaded = bundle.reduction.unwrap();
    for &kn in &keep {
        let before = red.reduction.to_reduced(kn).unwrap();
        let after = loaded.to_reduced(kn).unwrap();
        assert_eq!(after, r.remap.to_internal(before).unwrap());
        assert_eq!(loaded.to_original(after), kn);
    }
    // Every reordered hop must expand to the same original interiors.
    let mut want = Vec::new();
    let mut got = Vec::new();
    for u in red.graph.nodes() {
        for e in red.graph.out_edges(u) {
            red.reduction.expand_path(&red.graph, &[u, e.to], &mut want);
            let (nu, nv) = (
                r.remap.to_internal(u).unwrap(),
                r.remap.to_internal(e.to).unwrap(),
            );
            loaded.expand_path(&bundle.graph, &[nu, nv], &mut got);
            assert_eq!(want, got, "hop {u} -> {}", e.to);
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn remapped_categories_translate_members() {
    let g = symmetric_graph(40, 4);
    let mut cats = CategoryIndex::new();
    cats.add_category("poi", vec![1, 5, 17]);
    let r = reorder(&g);
    let cats2 = kpj_store::remap_categories(&cats, &r.remap);
    let mut want: Vec<u32> = [1u32, 5, 17]
        .iter()
        .map(|&v| r.remap.to_internal(v).unwrap())
        .collect();
    want.sort_unstable();
    assert_eq!(cats2.members(0), want.as_slice());
}
