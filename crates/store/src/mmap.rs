//! Minimal read-only file mapping, no external dependencies.
//!
//! On Unix this calls `mmap(2)` directly (std already links libc); the
//! mapping is `PROT_READ`/`MAP_PRIVATE`, so the kernel pages CSR sections
//! in on demand and shares clean pages across processes. On other
//! platforms it degrades to reading the file into an owned buffer — same
//! API, same zero-copy `SectionBuf` views into the buffer, just without
//! demand paging.
//!
//! The v2 format is little-endian on disk and mapped bytes are
//! reinterpreted as native-endian integers, so the zero-copy reader is
//! little-endian-only (checked at compile time below). The *writer* always
//! emits little-endian explicitly and works anywhere.

#[cfg(target_endian = "big")]
compile_error!("kpj-store's zero-copy reader requires a little-endian target");

use std::fs::File;
use std::io;

/// A read-only view of an entire file.
#[derive(Debug)]
pub struct Mmap {
    inner: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapped region is immutable (`PROT_READ`, `MAP_PRIVATE`) for
// the lifetime of the struct and is unmapped exactly once on drop, so
// sharing the view across threads is as safe as sharing `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Map `file` (its full current length) read-only.
    ///
    /// Empty files get an empty heap backing — `mmap(2)` rejects
    /// zero-length mappings, and callers reject them as truncated anyway.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                inner: Backing::Heap(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file, len is its exact size, and we
            // request a fresh read-only private mapping (addr = NULL).
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                inner: Backing::Mapped {
                    ptr: ptr as *mut u8,
                    len,
                },
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut buf)?;
            Ok(Mmap {
                inner: Backing::Heap(buf),
            })
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives until
            // drop; the region is immutable.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v,
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for a zero-length file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when backed by a real kernel mapping (false for the portable
    /// heap fallback and empty files).
    pub fn is_kernel_mapping(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly the region returned by mmap, unmapped once.
            unsafe {
                sys::munmap(ptr as *mut _, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("kpj-mmap-test-{}", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"hello mapping").unwrap();
        }
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert_eq!(m.as_slice(), b"hello mapping");
        assert_eq!(m.len(), 13);
        #[cfg(unix)]
        assert!(m.is_kernel_mapping());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("kpj-mmap-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_kernel_mapping());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }
}
