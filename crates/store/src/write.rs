//! Streaming v2 writer.
//!
//! Section sizes are all derivable from `(n, m, |L|, …)` before any payload
//! byte exists, so the header and section table are written **first** and
//! payloads are streamed behind them — a 24M-node graph serializes without
//! ever holding a second copy in memory. The only backwards seek is the
//! final `data_checksum` patch at offset 48.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use kpj_graph::{CategoryIndex, EdgeRef, Graph, NodeRemap, Reduction};
use kpj_landmark::LandmarkIndex;

use crate::format::{
    align_up, section_id, Fnv64, SectionEntry, StoreError, FLAG_SYMMETRIC, HEADER_LEN, MAGIC,
    SECTION_ENTRY_LEN, VERSION,
};

/// Offset of the `data_checksum` field patched by `finish`.
const DATA_CHECKSUM_OFFSET: u64 = 48;

/// Convert a count to the format's fixed `u32` width, refusing (rather
/// than silently truncating) anything that does not fit. `what` names the
/// count in the error, e.g. "section" or "category members".
fn count_u32(what: &'static str, count: u64) -> Result<u32, StoreError> {
    u32::try_from(count).map_err(|_| StoreError::CountOverflow { what, count })
}

/// Low-level section-at-a-time writer. Declared sections must be written
/// in table order with exactly the declared byte counts; `finish` patches
/// the data checksum and verifies the bookkeeping.
pub struct V2Writer<W: Write + Seek> {
    w: BufWriter<W>,
    pos: u64,
    data_fnv: Fnv64,
    table: Vec<SectionEntry>,
    next: usize,
    written_in_section: u64,
}

impl<W: Write + Seek> V2Writer<W> {
    /// Write the header and section table for `decls` (id, payload bytes)
    /// and position the stream at the first section.
    pub fn new(w: W, n: u64, m: u64, flags: u32, decls: &[(u32, u64)]) -> Result<Self, StoreError> {
        let mut table = Vec::with_capacity(decls.len());
        let mut cursor = align_up(HEADER_LEN + decls.len() as u64 * SECTION_ENTRY_LEN);
        for &(id, len) in decls {
            table.push(SectionEntry {
                id,
                offset: cursor,
                len,
            });
            cursor = align_up(cursor + len);
        }

        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&flags.to_le_bytes());
        header.extend_from_slice(&n.to_le_bytes());
        header.extend_from_slice(&m.to_le_bytes());
        header.extend_from_slice(&count_u32("section", decls.len() as u64)?.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        debug_assert_eq!(header.len() as u64, 40);

        let mut table_bytes = Vec::with_capacity(table.len() * SECTION_ENTRY_LEN as usize);
        for e in &table {
            table_bytes.extend_from_slice(&e.id.to_le_bytes());
            table_bytes.extend_from_slice(&0u32.to_le_bytes());
            table_bytes.extend_from_slice(&e.offset.to_le_bytes());
            table_bytes.extend_from_slice(&e.len.to_le_bytes());
        }

        let mut meta = Fnv64::new();
        meta.update(&header);
        meta.update(&table_bytes);
        header.extend_from_slice(&meta.finish().to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // data checksum placeholder
        header.extend_from_slice(&0u64.to_le_bytes()); // reserved
        debug_assert_eq!(header.len() as u64, HEADER_LEN);

        let mut this = V2Writer {
            w: BufWriter::with_capacity(1 << 20, w),
            pos: 0,
            data_fnv: Fnv64::new(),
            table,
            next: 0,
            written_in_section: 0,
        };
        this.raw(&header)?;
        this.raw(&table_bytes)?;
        Ok(this)
    }

    fn raw(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.w.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    fn pad_to(&mut self, target: u64) -> Result<(), StoreError> {
        debug_assert!(target >= self.pos);
        const ZEROS: [u8; 64] = [0; 64];
        let mut gap = target - self.pos;
        while gap > 0 {
            let chunk = gap.min(64) as usize;
            self.raw(&ZEROS[..chunk])?;
            gap -= chunk as u64;
        }
        Ok(())
    }

    /// Start the next declared section; `id` must match the declaration.
    pub fn begin_section(&mut self, id: u32) -> Result<(), StoreError> {
        if self.next > 0 {
            let prev = self.table[self.next - 1];
            assert_eq!(
                self.written_in_section, prev.len,
                "section {} wrote {} bytes, declared {}",
                prev.id, self.written_in_section, prev.len
            );
        }
        let entry = self.table.get(self.next).unwrap_or_else(|| {
            panic!(
                "begin_section({id}) beyond the {} declared",
                self.table.len()
            )
        });
        assert_eq!(entry.id, id, "section order must match declarations");
        self.pad_to(entry.offset)?;
        self.next += 1;
        self.written_in_section = 0;
        Ok(())
    }

    /// Append payload bytes to the current section (checksummed).
    pub fn payload(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        assert!(self.next > 0, "payload before begin_section");
        self.data_fnv.update(bytes);
        self.written_in_section += bytes.len() as u64;
        self.raw(bytes)
    }

    /// Append a slice of `u32`s as little-endian payload.
    pub fn payload_u32s(
        &mut self,
        values: impl IntoIterator<Item = u32>,
    ) -> Result<(), StoreError> {
        let mut buf = [0u8; 4096];
        let mut used = 0;
        for v in values {
            buf[used..used + 4].copy_from_slice(&v.to_le_bytes());
            used += 4;
            if used == buf.len() {
                self.payload(&buf)?;
                used = 0;
            }
        }
        if used > 0 {
            self.payload(&buf[..used])?;
        }
        Ok(())
    }

    /// Append a slice of `u64`s as little-endian payload.
    pub fn payload_u64s(
        &mut self,
        values: impl IntoIterator<Item = u64>,
    ) -> Result<(), StoreError> {
        let mut buf = [0u8; 4096];
        let mut used = 0;
        for v in values {
            buf[used..used + 8].copy_from_slice(&v.to_le_bytes());
            used += 8;
            if used == buf.len() {
                self.payload(&buf)?;
                used = 0;
            }
        }
        if used > 0 {
            self.payload(&buf[..used])?;
        }
        Ok(())
    }

    /// Finish the file: verify every declared section was fully written,
    /// pad the tail, and patch `data_checksum` into the header.
    pub fn finish(mut self) -> Result<(), StoreError> {
        assert_eq!(
            self.next,
            self.table.len(),
            "finish with {}/{} sections written",
            self.next,
            self.table.len()
        );
        if let Some(last) = self.table.last() {
            assert_eq!(
                self.written_in_section, last.len,
                "last section wrote {} bytes, declared {}",
                self.written_in_section, last.len
            );
            self.pad_to(align_up(last.offset + last.len))?;
        }
        let checksum = self.data_fnv.finish();
        self.w.flush()?;
        let inner = self.w.get_mut();
        inner.seek(SeekFrom::Start(DATA_CHECKSUM_OFFSET))?;
        inner.write_all(&checksum.to_le_bytes())?;
        inner.flush()?;
        Ok(())
    }
}

/// Serialize the category index into its section payload.
fn categories_payload(cats: &CategoryIndex) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    out.extend_from_slice(&count_u32("category", cats.category_count() as u64)?.to_le_bytes());
    for (_, name, members) in cats.iter() {
        out.extend_from_slice(&count_u32("category name bytes", name.len() as u64)?.to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&count_u32("category members", members.len() as u64)?.to_le_bytes());
        for &v in members {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

fn landmark_meta_payload(lm: &LandmarkIndex) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    out.extend_from_slice(&count_u32("landmark", lm.len() as u64)?.to_le_bytes());
    for &l in lm.landmarks() {
        out.extend_from_slice(&l.to_le_bytes());
    }
    Ok(out)
}

/// Write a complete v2 store for an in-memory graph plus optional sidecar
/// indexes. When the reverse CSR is byte-identical to the forward CSR (a
/// symmetric multigraph), the reverse sections are elided and the
/// SYMMETRIC flag set — readers alias them, halving the file.
///
/// `remap` and `reduction` are mutually exclusive: a reduced graph's
/// locality reorder is folded into the reduction offline
/// ([`Reduction::remapped`]), so a file never needs both.
pub fn write_store<W: Write + Seek>(
    w: W,
    graph: &Graph,
    categories: Option<&CategoryIndex>,
    landmarks: Option<&LandmarkIndex>,
    remap: Option<&NodeRemap>,
    reduction: Option<&Reduction>,
) -> Result<(), StoreError> {
    assert!(
        remap.is_none() || reduction.is_none(),
        "a reduced store folds its reorder into the reduction; pass one, not both"
    );
    let (out_offsets, out_edges, in_offsets, in_edges) = graph.sections();
    let n = graph.node_count() as u64;
    let m = graph.edge_count() as u64;
    let symmetric = out_offsets == in_offsets && out_edges == in_edges;

    let cats_payload = categories.map(categories_payload).transpose()?;
    let lm_meta = landmarks.map(landmark_meta_payload).transpose()?;

    let mut decls: Vec<(u32, u64)> = vec![
        (section_id::OUT_OFFSETS, (n + 1) * 4),
        (section_id::OUT_EDGES, m * 8),
    ];
    if !symmetric {
        decls.push((section_id::IN_OFFSETS, (n + 1) * 4));
        decls.push((section_id::IN_EDGES, m * 8));
    }
    if let Some(p) = &cats_payload {
        decls.push((section_id::CATEGORIES, p.len() as u64));
    }
    if let Some(lm) = landmarks {
        decls.push((
            section_id::LANDMARK_META,
            lm_meta.as_ref().unwrap().len() as u64,
        ));
        decls.push((section_id::LANDMARK_TABLES, lm.tables().len() as u64 * 8));
    }
    if let Some(r) = remap {
        decls.push((section_id::REMAP_OLD_TO_NEW, r.len() as u64 * 4));
        decls.push((section_id::REMAP_NEW_TO_OLD, r.len() as u64 * 4));
    }
    if let Some(r) = reduction {
        let (o2r, r2o, offs, nodes, prefix) = r.sections();
        assert_eq!(r2o.len() as u64, n, "reduction does not match the graph");
        assert_eq!(
            offs.len() as u64,
            m + 1,
            "reduction does not match the graph"
        );
        decls.push((section_id::REDUCE_ORIG_TO_RED, o2r.len() as u64 * 4));
        decls.push((section_id::REDUCE_RED_TO_ORIG, r2o.len() as u64 * 4));
        decls.push((section_id::REDUCE_EXP_OFFSETS, offs.len() as u64 * 4));
        decls.push((section_id::REDUCE_EXP_NODES, nodes.len() as u64 * 4));
        decls.push((section_id::REDUCE_EXP_PREFIX, prefix.len() as u64 * 4));
    }

    let flags = if symmetric { FLAG_SYMMETRIC } else { 0 };
    let mut w = V2Writer::new(w, n, m, flags, &decls)?;

    let write_csr = |w: &mut V2Writer<W>, offsets: &[u32], edges: &[EdgeRef], off_id, edge_id| {
        w.begin_section(off_id)?;
        w.payload_u32s(offsets.iter().copied())?;
        w.begin_section(edge_id)?;
        w.payload_u32s(edges.iter().flat_map(|e| [e.to, e.weight]))?;
        Ok::<(), StoreError>(())
    };
    write_csr(
        &mut w,
        out_offsets,
        out_edges,
        section_id::OUT_OFFSETS,
        section_id::OUT_EDGES,
    )?;
    if !symmetric {
        write_csr(
            &mut w,
            in_offsets,
            in_edges,
            section_id::IN_OFFSETS,
            section_id::IN_EDGES,
        )?;
    }
    if let Some(p) = &cats_payload {
        w.begin_section(section_id::CATEGORIES)?;
        w.payload(p)?;
    }
    if let Some(lm) = landmarks {
        w.begin_section(section_id::LANDMARK_META)?;
        w.payload(lm_meta.as_ref().unwrap())?;
        w.begin_section(section_id::LANDMARK_TABLES)?;
        w.payload_u64s(lm.tables().iter().copied())?;
    }
    if let Some(r) = remap {
        w.begin_section(section_id::REMAP_OLD_TO_NEW)?;
        w.payload_u32s(r.old_to_new().iter().copied())?;
        w.begin_section(section_id::REMAP_NEW_TO_OLD)?;
        w.payload_u32s(r.new_to_old().iter().copied())?;
    }
    if let Some(r) = reduction {
        let (o2r, r2o, offs, nodes, prefix) = r.sections();
        for (id, payload) in [
            (section_id::REDUCE_ORIG_TO_RED, o2r),
            (section_id::REDUCE_RED_TO_ORIG, r2o),
            (section_id::REDUCE_EXP_OFFSETS, offs),
            (section_id::REDUCE_EXP_NODES, nodes),
            (section_id::REDUCE_EXP_PREFIX, prefix),
        ] {
            w.begin_section(id)?;
            w.payload_u32s(payload.iter().copied())?;
        }
    }
    w.finish()
}

/// [`write_store`] straight to a file path.
pub fn write_store_to_path(
    path: &Path,
    graph: &Graph,
    categories: Option<&CategoryIndex>,
    landmarks: Option<&LandmarkIndex>,
    remap: Option<&NodeRemap>,
    reduction: Option<&Reduction>,
) -> Result<(), StoreError> {
    let file = File::create(path)?;
    write_store(file, graph, categories, landmarks, remap, reduction)
}

/// Streaming writer for **symmetric** graphs whose adjacency is produced
/// on the fly (the `gen-huge` generator): degrees first, then edges, in
/// `O(1)` memory. The SYMMETRIC flag makes the forward sections double as
/// the reverse CSR, so nothing is buffered or transposed.
pub struct StreamWriter<W: Write + Seek> {
    inner: V2Writer<W>,
    n: u64,
    m: u64,
    degrees_seen: u64,
    edges_seen: u64,
    cumulative: u64,
}

impl<W: Write + Seek> StreamWriter<W> {
    /// Begin a symmetric v2 file for `n` nodes and `m` directed edges.
    pub fn new(w: W, n: u64, m: u64) -> Result<Self, StoreError> {
        let decls = [
            (section_id::OUT_OFFSETS, (n + 1) * 4),
            (section_id::OUT_EDGES, m * 8),
        ];
        let mut inner = V2Writer::new(w, n, m, FLAG_SYMMETRIC, &decls)?;
        inner.begin_section(section_id::OUT_OFFSETS)?;
        inner.payload_u32s([0u32])?;
        Ok(StreamWriter {
            inner,
            n,
            m,
            degrees_seen: 0,
            edges_seen: 0,
            cumulative: 0,
        })
    }

    /// Record the out-degree of the next node (call exactly `n` times).
    pub fn push_degree(&mut self, degree: u32) -> Result<(), StoreError> {
        self.degrees_seen += 1;
        assert!(self.degrees_seen <= self.n, "more degrees than nodes");
        self.cumulative += degree as u64;
        assert!(self.cumulative <= self.m, "degrees sum past declared m");
        let offset = count_u32("cumulative degree", self.cumulative)?;
        self.inner.payload_u32s([offset])
    }

    /// Switch from the offsets section to the edges section.
    pub fn finish_degrees(&mut self) -> Result<(), StoreError> {
        assert_eq!(self.degrees_seen, self.n, "degree count != n");
        assert_eq!(self.cumulative, self.m, "degrees sum != m");
        self.inner.begin_section(section_id::OUT_EDGES)
    }

    /// Append the next edge in CSR order (call exactly `m` times, grouped
    /// by tail in the same order degrees were pushed).
    pub fn push_edge(&mut self, to: u32, weight: u32) -> Result<(), StoreError> {
        self.edges_seen += 1;
        assert!(self.edges_seen <= self.m, "more edges than declared");
        self.inner.payload_u32s([to, weight])
    }

    /// Seal the file (pads, patches the data checksum).
    pub fn finish(self) -> Result<(), StoreError> {
        assert_eq!(self.edges_seen, self.m, "edge count != m");
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn oversized_counts_error_instead_of_truncating() {
        // Mocked lengths: a real >4B-element section would need tens of
        // gigabytes, so the checked conversion is exercised directly with
        // the counts such a section would produce.
        assert!(count_u32("section", u32::MAX as u64).is_ok());
        let err = count_u32("category members", u32::MAX as u64 + 1).unwrap_err();
        match err {
            StoreError::CountOverflow { what, count } => {
                assert_eq!(what, "category members");
                assert_eq!(count, u32::MAX as u64 + 1);
            }
            other => panic!("expected CountOverflow, got {other:?}"),
        }
        assert!(err.to_string().contains("category members"));
    }

    #[test]
    fn stream_writer_rejects_offsets_past_u32() {
        // Declared m pushes the cumulative-degree offsets past u32::MAX;
        // the old `as u32` silently wrapped here and produced a corrupt
        // but checksummed file.
        let m = 6_000_000_000u64;
        let mut w = StreamWriter::new(Cursor::new(Vec::new()), 2, m).unwrap();
        w.push_degree(3_000_000_000).unwrap();
        let err = w.push_degree(3_000_000_000).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::CountOverflow {
                    what: "cumulative degree",
                    ..
                }
            ),
            "got {err:?}"
        );
    }
}
