//! Zero-copy v2 reader (plus the v1 heap fallback).
//!
//! `open_v2` maps the file, verifies the meta checksum and section
//! geometry, and reinterprets the CSR sections in place — the only heap
//! allocations are the small sidecar structures (category index, landmark
//! id list, the `StoreBundle` itself). The bulk `data_checksum` is *not*
//! recomputed on open (that would fault in every page of a multi-gigabyte
//! file); call [`StoreBundle::verify_data`] to do it explicitly.

use std::any::Any;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use kpj_graph::{CategoryIndex, EdgeRef, Graph, GraphError, NodeRemap, Reduction, SectionBuf};
use kpj_landmark::LandmarkIndex;

use crate::format::{
    section_id, Fnv64, SectionEntry, StoreError, FLAG_SYMMETRIC, HEADER_LEN, MAGIC, SECTION_ALIGN,
    SECTION_ENTRY_LEN, VERSION,
};
use crate::mmap::Mmap;

/// Everything a v2 file (or a v1 fallback load) provides.
#[derive(Debug)]
pub struct StoreBundle {
    /// The graph, CSR sections borrowed from the mapping when possible.
    pub graph: Graph,
    /// Category index, if the file carries one.
    pub categories: Option<CategoryIndex>,
    /// Landmark index (tables mapped zero-copy), if present.
    pub landmarks: Option<LandmarkIndex>,
    /// Locality remap recorded by the reorder pass, if present.
    pub remap: Option<NodeRemap>,
    /// Reduction mapping recorded by `convert --reduce`, if present: the
    /// graph above is the *reduced* graph and queries must translate
    /// through this (see [`kpj_graph::IdTranslation`]).
    pub reduction: Option<Reduction>,
    backing: Option<Arc<Mmap>>,
    data_checksum: u64,
    payload_ranges: Vec<(u64, u64)>,
}

impl StoreBundle {
    /// True when the CSR sections are views into a file mapping rather
    /// than heap copies (always true for `open_v2`, false for v1 loads).
    pub fn is_mapped(&self) -> bool {
        self.backing.is_some()
    }

    /// Recompute the bulk payload checksum and compare to the stored one.
    ///
    /// Touches every payload byte — intended for `kpj-cli info`/`convert`
    /// style tooling, not the serve cold path. A v1 load (no checksum in
    /// the format) trivially passes.
    pub fn verify_data(&self) -> Result<(), StoreError> {
        let Some(backing) = &self.backing else {
            return Ok(());
        };
        let bytes = backing.as_slice();
        let mut fnv = Fnv64::new();
        for &(offset, len) in &self.payload_ranges {
            fnv.update(&bytes[offset as usize..(offset + len) as usize]);
        }
        let computed = fnv.finish();
        if computed != self.data_checksum {
            return Err(StoreError::ChecksumMismatch {
                which: "data",
                stored: self.data_checksum,
                computed,
            });
        }
        Ok(())
    }

    /// Wrap a heap-built graph (v1 load or in-memory generation).
    pub fn from_heap_graph(graph: Graph) -> Self {
        StoreBundle {
            graph,
            categories: None,
            landmarks: None,
            remap: None,
            reduction: None,
            backing: None,
            data_checksum: 0,
            payload_ranges: Vec::new(),
        }
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn bad_content(message: String) -> StoreError {
    StoreError::Graph(GraphError::Parse { line: 0, message })
}

/// Reinterpret a section as a typed slice, zero-copy.
///
/// Alignment always holds for kernel mappings (page-aligned base +
/// 64-aligned section offset); the heap fallback backing could in theory
/// be misaligned, in which case the section is copied out instead.
fn typed<T: Copy + Send + Sync + 'static>(
    map: &Arc<Mmap>,
    entry: SectionEntry,
) -> Result<SectionBuf<T>, StoreError> {
    let elem = std::mem::size_of::<T>() as u64;
    if entry.len % elem != 0 {
        return Err(StoreError::BadSectionLength {
            section: entry.id,
            len: entry.len,
            elem,
        });
    }
    let count = (entry.len / elem) as usize;
    let bytes = map.as_slice();
    let ptr = bytes[entry.offset as usize..].as_ptr();
    if ptr.align_offset(std::mem::align_of::<T>()) != 0 {
        // Heap-fallback backing with unlucky alignment: copy.
        let mut out = Vec::with_capacity(count);
        let raw = &bytes[entry.offset as usize..(entry.offset + entry.len) as usize];
        // SAFETY: T is plain-old-data (u32/u64/EdgeRef), and we read
        // exactly `len` initialized bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr() as *mut u8, raw.len());
            out.set_len(count);
        }
        return Ok(out.into());
    }
    let owner: Arc<dyn Any + Send + Sync> = Arc::clone(map) as _;
    // SAFETY: the range was bounds-checked against the mapping, the
    // pointer is aligned (checked above), the mapping is immutable and
    // kept alive by `owner`, and T is plain-old-data.
    Ok(unsafe { SectionBuf::from_raw_parts(ptr as *const T, count, owner) })
}

fn parse_categories(payload: &[u8]) -> Result<CategoryIndex, StoreError> {
    let need = |n: usize, at: usize| -> Result<(), StoreError> {
        if at + n > payload.len() {
            Err(StoreError::Truncated {
                need: (at + n) as u64,
                have: payload.len() as u64,
            })
        } else {
            Ok(())
        }
    };
    let mut cats = CategoryIndex::new();
    need(4, 0)?;
    let count = read_u32(payload, 0) as usize;
    let mut at = 4;
    for _ in 0..count {
        need(4, at)?;
        let name_len = read_u32(payload, at) as usize;
        at += 4;
        need(name_len, at)?;
        let name = std::str::from_utf8(&payload[at..at + name_len])
            .map_err(|_| bad_content("category name is not UTF-8".into()))?
            .to_string();
        at += name_len;
        need(4, at)?;
        let members = read_u32(payload, at) as usize;
        at += 4;
        need(members * 4, at)?;
        let mut list = Vec::with_capacity(members);
        for i in 0..members {
            list.push(read_u32(payload, at + i * 4));
        }
        at += members * 4;
        cats.add_category(name, list);
    }
    Ok(cats)
}

/// Open a v2 file with full structural validation; see the module docs.
pub fn open_v2(path: &Path) -> Result<StoreBundle, StoreError> {
    let file = File::open(path)?;
    let map = Arc::new(Mmap::map(&file)?);
    let bytes = map.as_slice();
    let have = bytes.len() as u64;
    if have < HEADER_LEN {
        return Err(StoreError::Truncated {
            need: HEADER_LEN,
            have,
        });
    }
    if &bytes[0..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let flags = read_u32(bytes, 12);
    let n = read_u64(bytes, 16);
    let m = read_u64(bytes, 24);
    let section_count = read_u32(bytes, 32) as u64;
    if section_count > 1024 {
        return Err(bad_content(format!(
            "implausible section count {section_count}"
        )));
    }
    let table_end = HEADER_LEN + section_count * SECTION_ENTRY_LEN;
    if have < table_end {
        return Err(StoreError::Truncated {
            need: table_end,
            have,
        });
    }

    let stored_meta = read_u64(bytes, 40);
    let mut fnv = Fnv64::new();
    fnv.update(&bytes[0..40]);
    fnv.update(&bytes[HEADER_LEN as usize..table_end as usize]);
    if fnv.finish() != stored_meta {
        return Err(StoreError::ChecksumMismatch {
            which: "meta",
            stored: stored_meta,
            computed: fnv.finish(),
        });
    }
    let data_checksum = read_u64(bytes, 48);

    let mut entries: Vec<SectionEntry> = Vec::with_capacity(section_count as usize);
    for i in 0..section_count {
        let at = (HEADER_LEN + i * SECTION_ENTRY_LEN) as usize;
        let entry = SectionEntry {
            id: read_u32(bytes, at),
            offset: read_u64(bytes, at + 8),
            len: read_u64(bytes, at + 16),
        };
        if entries.iter().any(|e| e.id == entry.id) {
            return Err(StoreError::DuplicateSection(entry.id));
        }
        if entry.offset % SECTION_ALIGN != 0 {
            return Err(StoreError::Misaligned {
                section: entry.id,
                offset: entry.offset,
            });
        }
        let end = entry
            .offset
            .checked_add(entry.len)
            .ok_or(StoreError::Truncated {
                need: u64::MAX,
                have,
            })?;
        if end > have {
            return Err(StoreError::Truncated { need: end, have });
        }
        entries.push(entry);
    }
    let find = |id: u32| entries.iter().find(|e| e.id == id).copied();
    let require = |id: u32| find(id).ok_or(StoreError::MissingSection(id));

    let expect_len = |entry: SectionEntry, want: u64| -> Result<SectionEntry, StoreError> {
        if entry.len != want {
            Err(bad_content(format!(
                "section {} has {} bytes, expected {}",
                entry.id, entry.len, want
            )))
        } else {
            Ok(entry)
        }
    };

    let out_offsets: SectionBuf<u32> = typed(
        &map,
        expect_len(require(section_id::OUT_OFFSETS)?, (n + 1) * 4)?,
    )?;
    let out_edges: SectionBuf<EdgeRef> =
        typed(&map, expect_len(require(section_id::OUT_EDGES)?, m * 8)?)?;
    let symmetric = flags & FLAG_SYMMETRIC != 0;
    let (in_offsets, in_edges) = if symmetric {
        (out_offsets.clone(), out_edges.clone())
    } else {
        (
            typed(
                &map,
                expect_len(require(section_id::IN_OFFSETS)?, (n + 1) * 4)?,
            )?,
            typed(&map, expect_len(require(section_id::IN_EDGES)?, m * 8)?)?,
        )
    };
    let graph = Graph::from_sections(out_offsets, out_edges, in_offsets, in_edges)?;

    let categories = match find(section_id::CATEGORIES) {
        Some(entry) => Some(parse_categories(
            &bytes[entry.offset as usize..(entry.offset + entry.len) as usize],
        )?),
        None => None,
    };

    let landmarks = match find(section_id::LANDMARK_META) {
        Some(meta) => {
            let payload = &bytes[meta.offset as usize..(meta.offset + meta.len) as usize];
            if payload.len() < 4 {
                return Err(StoreError::Truncated {
                    need: 4,
                    have: payload.len() as u64,
                });
            }
            let count = read_u32(payload, 0) as usize;
            expect_len(meta, 4 + count as u64 * 4)?;
            let ids: Vec<u32> = (0..count).map(|i| read_u32(payload, 4 + i * 4)).collect();
            let tables: SectionBuf<u64> = typed(
                &map,
                expect_len(require(section_id::LANDMARK_TABLES)?, count as u64 * n * 8)?,
            )?;
            Some(LandmarkIndex::from_raw(ids, tables, n as usize)?)
        }
        None => None,
    };

    let remap = match find(section_id::REMAP_OLD_TO_NEW) {
        Some(o2n) => {
            let o2n: SectionBuf<u32> = typed(&map, expect_len(o2n, n * 4)?)?;
            let n2o: SectionBuf<u32> = typed(
                &map,
                expect_len(require(section_id::REMAP_NEW_TO_OLD)?, n * 4)?,
            )?;
            Some(NodeRemap::from_sections(o2n, n2o)?)
        }
        None => None,
    };

    let reduction = match find(section_id::REDUCE_ORIG_TO_RED) {
        Some(o2r) => {
            if remap.is_some() {
                return Err(bad_content(
                    "file carries both remap and reduction sections".into(),
                ));
            }
            let o2r: SectionBuf<u32> = typed(&map, o2r)?;
            let r2o: SectionBuf<u32> = typed(
                &map,
                expect_len(require(section_id::REDUCE_RED_TO_ORIG)?, n * 4)?,
            )?;
            let offs: SectionBuf<u32> = typed(
                &map,
                expect_len(require(section_id::REDUCE_EXP_OFFSETS)?, (m + 1) * 4)?,
            )?;
            let nodes: SectionBuf<u32> = typed(&map, require(section_id::REDUCE_EXP_NODES)?)?;
            let prefix: SectionBuf<u32> = typed(
                &map,
                expect_len(
                    require(section_id::REDUCE_EXP_PREFIX)?,
                    require(section_id::REDUCE_EXP_NODES)?.len,
                )?,
            )?;
            Some(
                Reduction::from_sections(o2r, r2o, offs, nodes, prefix, &graph)
                    .map_err(|e| bad_content(e.to_string()))?,
            )
        }
        None => None,
    };

    let payload_ranges = entries.iter().map(|e| (e.offset, e.len)).collect();
    Ok(StoreBundle {
        graph,
        categories,
        landmarks,
        remap,
        reduction,
        backing: Some(map),
        data_checksum,
        payload_ranges,
    })
}

/// Open either format: sniffs the version field, mmaps v2 zero-copy,
/// heap-loads v1 through [`kpj_graph::io::read_binary`].
pub fn open_any(path: &Path) -> Result<StoreBundle, StoreError> {
    use std::io::Read;
    let mut head = [0u8; 12];
    let mut f = File::open(path)?;
    let got = f.read(&mut head)?;
    if got < 12 {
        return Err(StoreError::Truncated {
            need: 12,
            have: got as u64,
        });
    }
    if &head[0..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    match u32::from_le_bytes(head[8..12].try_into().unwrap()) {
        1 => {
            let graph = kpj_graph::io::read_binary(File::open(path)?)?;
            Ok(StoreBundle::from_heap_graph(graph))
        }
        2 => open_v2(path),
        v => Err(StoreError::UnsupportedVersion(v)),
    }
}
