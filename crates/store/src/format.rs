//! The "KPJGRAPH" v2 on-disk layout: constants, checksums, errors.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "KPJGRAPH"
//! 8       4     version  u32 = 2
//! 12      4     flags    u32 (bit 0: SYMMETRIC — reverse CSR aliases forward)
//! 16      8     n        u64 (node count)
//! 24      8     m        u64 (edge count)
//! 32      4     section_count u32
//! 36      4     reserved u32 = 0
//! 40      8     meta_checksum u64  (FNV-1a over bytes [0,40) ++ section table)
//! 48      8     data_checksum u64  (FNV-1a over section payloads, table order)
//! 56      8     reserved u64 = 0
//! 64      24·k  section table: { id u32, reserved u32, offset u64, len u64 }
//! …       —     zero padding to the next 64-byte boundary
//! …       —     sections, each starting at a 64-byte-aligned offset
//! ```
//!
//! All fields are little-endian and fixed-width. Section *offsets* are
//! absolute file offsets and must be 64-byte-aligned (a multiple of every
//! element alignment we map, and a cache-line boundary); section *lengths*
//! are exact payload byte counts — the gap up to the next section is zero
//! padding, excluded from `data_checksum`.
//!
//! `meta_checksum` is verified on every open (it covers everything needed
//! to establish the section geometry). `data_checksum` covers the bulk
//! payload and is verified *lazily* ([`crate::StoreBundle::verify_data`])
//! so that a cold open of a multi-gigabyte file stays `O(1)` I/O.

use std::fmt;

use kpj_graph::GraphError;

/// File magic, shared with the v1 format.
pub const MAGIC: &[u8; 8] = b"KPJGRAPH";
/// Version written by this crate.
pub const VERSION: u32 = 2;
/// Fixed header size in bytes, before the section table.
pub const HEADER_LEN: u64 = 64;
/// Size of one section-table entry.
pub const SECTION_ENTRY_LEN: u64 = 24;
/// Required alignment of every section payload.
pub const SECTION_ALIGN: u64 = 64;
/// Header flag: the graph is symmetric and the reverse CSR sections are
/// omitted — readers alias them to the forward CSR sections.
pub const FLAG_SYMMETRIC: u32 = 1;

/// Section ids. Unknown ids are skipped on read (forward compatibility).
pub mod section_id {
    /// Forward CSR offsets: `(n+1) × u32`.
    pub const OUT_OFFSETS: u32 = 1;
    /// Forward CSR edges: `m × {to u32, weight u32}`.
    pub const OUT_EDGES: u32 = 2;
    /// Reverse CSR offsets (absent when SYMMETRIC).
    pub const IN_OFFSETS: u32 = 3;
    /// Reverse CSR edges (absent when SYMMETRIC).
    pub const IN_EDGES: u32 = 4;
    /// Category index (variable-length, parsed on heap — small).
    pub const CATEGORIES: u32 = 5;
    /// Landmark ids: `count u32, count × u32`.
    pub const LANDMARK_META: u32 = 6;
    /// Landmark distance tables: `|L| × n × u64`, row-major.
    pub const LANDMARK_TABLES: u32 = 7;
    /// Locality remap, external → internal: `n × u32`.
    pub const REMAP_OLD_TO_NEW: u32 = 8;
    /// Locality remap, internal → external: `n × u32`.
    pub const REMAP_NEW_TO_OLD: u32 = 9;
    /// Reduction: original id → reduced id (`u32::MAX` = removed):
    /// `n_orig × u32`. The header `n` of a reduced file is the *reduced*
    /// node count; `n_orig` is this section's length ÷ 4.
    pub const REDUCE_ORIG_TO_RED: u32 = 10;
    /// Reduction: reduced id → original id: `n × u32`.
    pub const REDUCE_RED_TO_ORIG: u32 = 11;
    /// Reduction: per-forward-edge expansion ranges: `(m+1) × u32`.
    pub const REDUCE_EXP_OFFSETS: u32 = 12;
    /// Reduction: contracted interior original ids, tail→head per chain.
    pub const REDUCE_EXP_NODES: u32 = 13;
    /// Reduction: cumulative weight from chain tail to each interior:
    /// same length as [`REDUCE_EXP_NODES`].
    pub const REDUCE_EXP_PREFIX: u32 = 14;
}

/// Round `pos` up to the next [`SECTION_ALIGN`] boundary.
pub fn align_up(pos: u64) -> u64 {
    pos.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Incremental FNV-1a 64-bit checksum — tiny, dependency-free, and fast
/// enough to stream alongside section writes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }

    /// Fold `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One entry of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (see [`section_id`]).
    pub id: u32,
    /// Absolute file offset of the payload (64-byte-aligned).
    pub offset: u64,
    /// Exact payload length in bytes.
    pub len: u64,
}

/// Errors opening, validating, or writing a v2 store file.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start with the KPJGRAPH magic.
    BadMagic,
    /// The version field is neither 1 nor 2.
    UnsupportedVersion(u32),
    /// The file is shorter than a declared structure requires.
    Truncated {
        /// Bytes the structure needs.
        need: u64,
        /// Bytes the file has.
        have: u64,
    },
    /// A section offset violates the 64-byte alignment rule.
    Misaligned {
        /// Offending section id.
        section: u32,
        /// Its declared offset.
        offset: u64,
    },
    /// A section length is not a multiple of its element size.
    BadSectionLength {
        /// Offending section id.
        section: u32,
        /// Its declared byte length.
        len: u64,
        /// Element size the length must divide into.
        elem: u64,
    },
    /// A count being serialized does not fit its fixed-width field. A bare
    /// `as u32` here would silently truncate and produce a corrupt file
    /// whose checksums still verify — the writer refuses instead.
    CountOverflow {
        /// What was being counted (e.g. "section", "category members").
        what: &'static str,
        /// The count that does not fit in `u32`.
        count: u64,
    },
    /// A required section is absent.
    MissingSection(u32),
    /// The same section id appears twice in the table.
    DuplicateSection(u32),
    /// A stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Which checksum failed ("meta" or "data").
        which: &'static str,
        /// Value stored in the file.
        stored: u64,
        /// Value recomputed from the bytes.
        computed: u64,
    },
    /// A structural invariant of the decoded content failed.
    Graph(GraphError),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "bad magic (not a kpj graph file)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Truncated { need, have } => {
                write!(f, "file truncated: need {need} bytes, have {have}")
            }
            StoreError::Misaligned { section, offset } => write!(
                f,
                "section {section} at offset {offset} is not 64-byte-aligned"
            ),
            StoreError::BadSectionLength { section, len, elem } => write!(
                f,
                "section {section} length {len} is not a multiple of element size {elem}"
            ),
            StoreError::CountOverflow { what, count } => write!(
                f,
                "{what} count {count} does not fit the format's u32 field"
            ),
            StoreError::MissingSection(id) => write!(f, "required section {id} is missing"),
            StoreError::DuplicateSection(id) => write!(f, "section {id} appears twice"),
            StoreError::ChecksumMismatch {
                which,
                stored,
                computed,
            } => write!(
                f,
                "{which} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            StoreError::Graph(e) => write!(f, "invalid graph content: {e}"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn align_rounds_up() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }

    #[test]
    fn errors_display_key_numbers() {
        let e = StoreError::Truncated { need: 10, have: 3 };
        assert!(e.to_string().contains("10"));
        let e = StoreError::ChecksumMismatch {
            which: "meta",
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("meta"));
    }
}
