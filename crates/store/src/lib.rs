//! Continental-scale graph storage for the `kpj` workspace.
//!
//! The v1 binary format (`kpj_graph::io::read_binary`) parses every CSR
//! array onto the heap and rebuilds the reverse CSR on each load — fine at
//! thousands of nodes, prohibitive at DIMACS-USA scale (~24M nodes). This
//! crate provides the v2 path (DESIGN.md §13):
//!
//! * **[`write_store`] / [`StreamWriter`]** — a page-aligned, section-table
//!   v2 file ("KPJGRAPH" v2) holding the forward CSR, the *materialized*
//!   reverse CSR (or an alias when the graph is symmetric), and optional
//!   category / landmark / remap sections, written streamingly so
//!   serialization never needs a second in-memory copy.
//! * **[`open_v2`] / [`open_any`]** — a zero-copy loader that mmaps the
//!   file, validates bounds/alignment/checksums, and hands the engine the
//!   exact same [`kpj_graph::Graph`] view it consumes when heap-built —
//!   cold start is `O(1)` I/O and allocation-free for the CSR sections.
//! * **[`reorder`]** — the offline BFS cache-locality pass, recording its
//!   permutation as a [`kpj_graph::NodeRemap`] for wire-boundary id
//!   translation.

#![warn(missing_docs)]

mod format;
mod mmap;
mod read;
mod reorder;
mod write;

pub use format::{section_id, Fnv64, SectionEntry, StoreError, FLAG_SYMMETRIC, VERSION};
pub use mmap::Mmap;
pub use read::{open_any, open_v2, StoreBundle};
pub use reorder::{
    bfs_order, remap_categories, remap_landmarks, remap_reduction, reorder, Reordered,
};
pub use write::{write_store, write_store_to_path, StreamWriter, V2Writer};
