//! Offline cache-locality node reordering.
//!
//! KPJ searches spend their time walking CSR adjacency; renumbering nodes
//! in BFS order from a high-degree root puts each frontier's neighbors on
//! adjacent cache lines, cutting the random-access span of the big
//! distance/parent arrays. The pass is a pure relabeling: the reordered
//! graph is isomorphic to the original, and the recorded [`NodeRemap`]
//! translates ids at the wire boundary, so answers are unchanged (the
//! oracle's `check_reorder` stage proves this per-query).
//!
//! Determinism: the BFS root is the maximum-out-degree node (ties to the
//! lowest id), neighbors are visited in adjacency order, and nodes
//! unreached from the root are swept in ascending old-id order — the
//! permutation is a pure function of the graph.

use std::collections::VecDeque;

use kpj_graph::{CategoryIndex, Graph, GraphBuilder, NodeId, NodeRemap, Reduction};
use kpj_landmark::LandmarkIndex;

/// A reordered graph plus the permutation that produced it.
#[derive(Debug)]
pub struct Reordered {
    /// The relabeled graph (internal ids).
    pub graph: Graph,
    /// external (old) ↔ internal (new) id translation.
    pub remap: NodeRemap,
}

/// The BFS visit order: `order[new_id] = old_id`.
pub fn bfs_order(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();

    // Root: maximum out-degree, ties to the lowest id.
    let root = g
        .nodes()
        .max_by_key(|&v| (g.out_degree(v), std::cmp::Reverse(v)))
        .unwrap_or(0);
    let enqueue = |v: NodeId, seen: &mut Vec<bool>, queue: &mut VecDeque<NodeId>| {
        if !seen[v as usize] {
            seen[v as usize] = true;
            queue.push_back(v);
        }
    };
    if n > 0 {
        enqueue(root, &mut seen, &mut queue);
    }
    // Sweep remaining components in ascending old-id order.
    let mut next_unseen: usize = 0;
    while order.len() < n {
        let Some(u) = queue.pop_front() else {
            while seen[next_unseen] {
                next_unseen += 1;
            }
            enqueue(next_unseen as NodeId, &mut seen, &mut queue);
            continue;
        };
        order.push(u);
        for e in g.out_edges(u) {
            enqueue(e.to, &mut seen, &mut queue);
        }
    }
    order
}

/// Relabel `g` into BFS order (see the module docs for the guarantees).
pub fn reorder(g: &Graph) -> Reordered {
    let n = g.node_count();
    let order = bfs_order(g);
    let mut old_to_new = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        old_to_new[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::with_capacity(n, g.edge_count());
    for (new_u, &old_u) in order.iter().enumerate() {
        for e in g.out_edges(old_u) {
            b.add_edge(new_u as NodeId, old_to_new[e.to as usize], e.weight)
                .expect("relabeled endpoints stay in range");
        }
    }
    let remap = NodeRemap::from_old_to_new(old_to_new).expect("BFS order is a permutation");
    Reordered {
        graph: b.build(),
        remap,
    }
}

/// Translate a category index into internal ids (members re-sorted).
pub fn remap_categories(cats: &CategoryIndex, remap: &NodeRemap) -> CategoryIndex {
    let mut out = CategoryIndex::new();
    for (_, name, members) in cats.iter() {
        let translated = members
            .iter()
            .map(|&v| remap.to_internal(v).expect("member id in range"))
            .collect();
        out.add_category(name, translated);
    }
    out
}

/// Fold a reorder of a **reduced** graph into its [`Reduction`], so the
/// result maps original ids straight to the reordered reduced ids and
/// the store file needs no separate remap sections. `old` is the reduced
/// graph `red` describes; `r` is `reorder(old)`.
pub fn remap_reduction(red: &Reduction, old: &Graph, r: &Reordered) -> Reduction {
    red.remapped(old, &r.remap, &r.graph)
}

/// Translate a landmark index into internal ids: landmark ids are mapped
/// and each table row is permuted so `tables[l][new] = δ(w_l, old)`.
pub fn remap_landmarks(lm: &LandmarkIndex, remap: &NodeRemap) -> LandmarkIndex {
    let n = lm.node_count();
    assert_eq!(n, remap.len(), "landmark index and remap disagree on n");
    let landmarks = lm
        .landmarks()
        .iter()
        .map(|&w| remap.to_internal(w).expect("landmark id in range"))
        .collect();
    let old_tables = lm.tables();
    let mut tables = vec![0u64; old_tables.len()];
    for l in 0..lm.len() {
        let src = &old_tables[l * n..(l + 1) * n];
        let dst = &mut tables[l * n..(l + 1) * n];
        for (old, &d) in src.iter().enumerate() {
            dst[remap.to_internal(old as NodeId).unwrap() as usize] = d;
        }
    }
    LandmarkIndex::from_raw(landmarks, tables.into(), n).expect("permuted tables keep their shape")
}
