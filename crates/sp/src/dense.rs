//! Whole-graph (multi-source) Dijkstra with dense output arrays.

use kpj_graph::{Graph, Length, NodeId, INFINITE_LENGTH};
use kpj_heap::IndexedMinHeap;

use crate::Direction;

/// Parent sentinel: the node is a search root or unreached.
pub const NO_PARENT: NodeId = NodeId::MAX;

/// Result of a whole-graph Dijkstra: dense `δ` and parent arrays.
///
/// With `Direction::Forward` and a single source `s`, `dist[v] = δ(s, v)`.
/// With `Direction::Backward` and sources `V_T` (all at distance 0),
/// `dist[v] = δ(v, V_T) = min_{t ∈ V_T} δ(v, t)` — exactly the distance to
/// the paper's virtual target node — and following `parent` pointers from
/// `v` walks the shortest forward path from `v` towards its nearest target.
#[derive(Debug, Clone)]
pub struct DenseDijkstra {
    direction: Direction,
    dist: Vec<Length>,
    parent: Vec<NodeId>,
    heap: IndexedMinHeap<Length>,
}

impl DenseDijkstra {
    /// Run Dijkstra over the whole graph from `sources` (each with an
    /// initial distance, normally 0) expanding edges in `direction`.
    ///
    /// Runs until the queue is exhausted: `O(m + n log n)`-ish with a binary
    /// heap, `O(n)` memory. For bounded / early-terminating searches use
    /// [`Searcher`](crate::Searcher) instead.
    pub fn run(
        g: &Graph,
        direction: Direction,
        sources: impl IntoIterator<Item = (NodeId, Length)>,
    ) -> Self {
        let n = g.node_count();
        let mut this = DenseDijkstra {
            direction,
            dist: vec![INFINITE_LENGTH; n],
            parent: vec![NO_PARENT; n],
            heap: IndexedMinHeap::new(n),
        };
        this.search(g, sources);
        this
    }

    /// Re-run the search in place, reusing the distance/parent arrays and
    /// the heap — no allocations when the graph size is unchanged. This is
    /// what lets a pooled engine rebuild its per-query SPT without paying
    /// three `O(n)` allocations per query.
    pub fn rerun(
        &mut self,
        g: &Graph,
        direction: Direction,
        sources: impl IntoIterator<Item = (NodeId, Length)>,
    ) {
        let n = g.node_count();
        if self.dist.len() != n {
            self.dist = vec![INFINITE_LENGTH; n];
            self.parent = vec![NO_PARENT; n];
            self.heap = IndexedMinHeap::new(n);
        } else {
            self.dist.fill(INFINITE_LENGTH);
            self.parent.fill(NO_PARENT);
            self.heap.clear();
        }
        self.direction = direction;
        self.search(g, sources);
    }

    fn search(&mut self, g: &Graph, sources: impl IntoIterator<Item = (NodeId, Length)>) {
        for (s, d0) in sources {
            if d0 < self.dist[s as usize] {
                self.dist[s as usize] = d0;
                self.heap.push_or_decrease(s as usize, d0);
            }
        }
        while let Some((u, du)) = self.heap.pop() {
            // `IndexedMinHeap` never yields stale entries, so `du` is final.
            debug_assert_eq!(du, self.dist[u]);
            for e in self.direction.edges(g, u as NodeId) {
                let nd = du.saturating_add(e.weight as Length);
                let v = e.to as usize;
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.parent[v] = u as NodeId;
                    self.heap.push_or_decrease(v, nd);
                }
            }
        }
    }

    /// Convenience: single forward source at distance 0.
    pub fn from_source(g: &Graph, s: NodeId) -> Self {
        Self::run(g, Direction::Forward, [(s, 0)])
    }

    /// Convenience: backward multi-source from `targets` at distance 0, i.e.
    /// distances **to** the target set along forward edges.
    pub fn to_targets(g: &Graph, targets: &[NodeId]) -> Self {
        Self::run(g, Direction::Backward, targets.iter().map(|&t| (t, 0)))
    }

    /// The direction this search expanded.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Distance of `v` ([`INFINITE_LENGTH`] if unreached).
    #[inline]
    pub fn dist(&self, v: NodeId) -> Length {
        self.dist[v as usize]
    }

    /// True if `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize] != INFINITE_LENGTH
    }

    /// The node `v` was settled from ([`NO_PARENT`] for roots/unreached).
    ///
    /// For a backward search this is the *next hop* of the shortest forward
    /// path from `v` to the target set.
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Borrow the full distance array (index = node id).
    pub fn dist_slice(&self) -> &[Length] {
        &self.dist
    }

    /// Consume into the distance array (for landmark tables).
    pub fn into_dist(self) -> Vec<Length> {
        self.dist
    }

    /// The node chain from `v` following parent pointers until a root.
    ///
    /// * Forward search: the shortest path `source → v`, returned in
    ///   source-first order.
    /// * Backward search: the shortest path `v → nearest target`, returned
    ///   in `v`-first order.
    ///
    /// Returns `None` if `v` was not reached.
    pub fn path_chain(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(v) {
            return None;
        }
        let mut chain = vec![v];
        let mut cur = v;
        while self.parent[cur as usize] != NO_PARENT {
            cur = self.parent[cur as usize];
            chain.push(cur);
        }
        if self.direction == Direction::Forward {
            chain.reverse();
        }
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    /// 0 →1→ 1 →1→ 2 →1→ 3, plus shortcut 0 →5→ 3 and an unreachable node 4.
    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.add_edge(0, 3, 5).unwrap();
        b.build()
    }

    #[test]
    fn forward_single_source() {
        let g = chain_graph();
        let d = DenseDijkstra::from_source(&g, 0);
        assert_eq!(d.dist(0), 0);
        assert_eq!(d.dist(1), 1);
        assert_eq!(d.dist(2), 2);
        assert_eq!(d.dist(3), 3); // chain beats the 5-weight shortcut
        assert!(!d.reached(4));
        assert_eq!(d.dist(4), INFINITE_LENGTH);
        assert_eq!(d.path_chain(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(d.path_chain(4), None);
        assert_eq!(d.parent(0), NO_PARENT);
    }

    #[test]
    fn backward_multi_source_gives_distance_to_target_set() {
        let g = chain_graph();
        let d = DenseDijkstra::to_targets(&g, &[3, 1]);
        assert_eq!(d.dist(0), 1); // 0 → 1 (target)
        assert_eq!(d.dist(1), 0);
        assert_eq!(d.dist(2), 1); // 2 → 3 (target)
        assert_eq!(d.dist(3), 0);
        // Next-hop semantics: from 2 the next hop toward the targets is 3.
        assert_eq!(d.parent(2), 3);
        assert_eq!(d.path_chain(2), Some(vec![2, 3]));
        assert_eq!(d.path_chain(0), Some(vec![0, 1]));
    }

    #[test]
    fn multi_source_with_offsets() {
        let g = chain_graph();
        // Source 0 at offset 10, source 1 at offset 0: node 2 should prefer 1.
        let d = DenseDijkstra::run(&g, Direction::Forward, [(0, 10), (1, 0)]);
        assert_eq!(d.dist(2), 1);
        assert_eq!(d.dist(0), 10);
        assert_eq!(d.dist(3), 2);
    }

    #[test]
    fn matches_bellman_ford_on_random_graph() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 60u32;
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..400 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            b.add_edge(u, v, rng.gen_range(0..100)).unwrap();
        }
        let g = b.build();

        // Reference: Bellman–Ford.
        let s = 0u32;
        let mut ref_dist = vec![INFINITE_LENGTH; n as usize];
        ref_dist[s as usize] = 0;
        for _ in 0..n {
            let mut changed = false;
            for u in g.nodes() {
                if ref_dist[u as usize] == INFINITE_LENGTH {
                    continue;
                }
                for e in g.out_edges(u) {
                    let nd = ref_dist[u as usize] + e.weight as Length;
                    if nd < ref_dist[e.to as usize] {
                        ref_dist[e.to as usize] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let d = DenseDijkstra::from_source(&g, s);
        assert_eq!(d.dist_slice(), ref_dist.as_slice());
    }

    #[test]
    fn path_chain_is_consistent_with_distances() {
        let g = chain_graph();
        let d = DenseDijkstra::from_source(&g, 0);
        let chain = d.path_chain(3).unwrap();
        let len: Length = chain
            .windows(2)
            .map(|w| g.edge_weight(w[0], w[1]).unwrap() as Length)
            .sum();
        assert_eq!(len, d.dist(3));
    }

    #[test]
    fn rerun_reuses_arrays_and_matches_fresh_run() {
        let g = chain_graph();
        let mut d = DenseDijkstra::from_source(&g, 0);
        d.rerun(&g, Direction::Backward, [(3, 0), (1, 0)]);
        let fresh = DenseDijkstra::to_targets(&g, &[3, 1]);
        assert_eq!(d.dist_slice(), fresh.dist_slice());
        assert_eq!(d.direction(), Direction::Backward);
        assert_eq!(d.parent(2), 3);
        // And back again: stale backward state must not leak through.
        d.rerun(&g, Direction::Forward, [(0, 0)]);
        assert_eq!(d.dist(3), 3);
        assert_eq!(d.path_chain(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0).unwrap();
        b.add_edge(1, 2, 0).unwrap();
        let g = b.build();
        let d = DenseDijkstra::from_source(&g, 0);
        assert_eq!(d.dist(2), 0);
    }
}
