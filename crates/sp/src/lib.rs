//! Shortest-path algorithms for the `kpj` workspace.
//!
//! Three layers:
//!
//! * [`DenseDijkstra`] — whole-graph (multi-source) Dijkstra producing dense
//!   distance/parent arrays. Used offline (landmark tables), per query for
//!   the `DA-SPT` baseline's full reverse shortest-path tree, and by the
//!   workload generator (sorting nodes by `δ(v, V_T)`).
//! * [`Searcher`] — a reusable, constrained, optionally bounded best-first
//!   search (Dijkstra/A\* depending on the supplied heuristic). One
//!   `Searcher` instance powers all of the paper's per-query searches:
//!   `CompSP` (A\* in a subspace), `TestLB` (Alg. 5, with threshold τ),
//!   candidate-path computations of the deviation baselines, and
//!   `PartialSPT`'s initial A\*.
//! * [`BidirectionalDijkstra`] — point-to-point distance/path queries
//!   (test oracle and tooling; the KPJ algorithms are one-to-category).
//! * [`Direction`] — forward/backward edge selection so every search can run
//!   on the reverse graph without materializing it.
//!
//! All scratch state is epoch-stamped (see `kpj_graph::scratch`), so reuse
//! across thousands of searches per query costs `O(1)` per reset.

#![warn(missing_docs)]

mod bidirectional;
mod dense;
mod searcher;

pub use bidirectional::{BidirectionalDijkstra, PointToPoint};
pub use dense::{DenseDijkstra, NO_PARENT};
pub use searcher::{Estimate, SearchOrder, SearchOutcome, Searcher, CANCEL_POLL_STRIDE};

use kpj_graph::{EdgeRef, Graph, NodeId};

/// Which adjacency a search expands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Expand out-edges: distances are *from* the source(s).
    Forward,
    /// Expand in-edges: distances are *to* the source(s) along forward edges.
    Backward,
}

impl Direction {
    /// The adjacency list of `u` in this direction.
    #[inline]
    pub fn edges(self, g: &Graph, u: NodeId) -> &[EdgeRef] {
        match self {
            Direction::Forward => g.out_edges(u),
            Direction::Backward => g.in_edges(u),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    #[test]
    fn direction_selects_adjacency() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 1, 2).unwrap();
        let g = b.build();
        assert_eq!(Direction::Forward.edges(&g, 0).len(), 1);
        assert_eq!(Direction::Forward.edges(&g, 1).len(), 0);
        assert_eq!(Direction::Backward.edges(&g, 1).len(), 2);
        assert_eq!(Direction::Forward.reversed(), Direction::Backward);
        assert_eq!(Direction::Backward.reversed(), Direction::Forward);
    }
}
