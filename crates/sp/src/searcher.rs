//! Reusable constrained, bounded best-first search (Dijkstra / A\*).

use kpj_graph::scratch::{TimestampedMap, TimestampedSet};
use kpj_graph::{EdgeRef, Graph, Length, NodeId, INFINITE_LENGTH};
use kpj_heap::IndexedKaryHeap;

use crate::{Direction, NO_PARENT};

/// Frontier-heap arity of the hot search loop. Dijkstra/A\* is
/// decrease-key-heavy (`sift_up`: one comparison per level), so a wider,
/// shallower heap wins over binary; 4 measured best in
/// `crates/heap/examples/heap_arity.rs`. Binary [`kpj_heap::IndexedMinHeap`]
/// remains the workspace default for the colder queues.
const SEARCH_HEAP_ARITY: usize = 4;

/// How many settles elapse between polls of the `cancel` hook of
/// [`Searcher::search_ctl`]. A power of two so the check compiles to a
/// mask; small enough that deadline overshoot stays in the microsecond
/// range even on dense graphs.
pub const CANCEL_POLL_STRIDE: usize = 64;

/// Per-node admissibility/heuristic verdict, produced by the `estimate`
/// callback of [`Searcher::search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimate {
    /// A lower bound on the remaining distance from this node to the goal
    /// (0 turns the search into plain Dijkstra). The node is enqueued iff
    /// `g + bound ≤ τ` when a threshold τ is set.
    Bound(Length),
    /// The node provably cannot reach the goal (e.g. a landmark proves
    /// `δ = ∞`). It is skipped *without* counting as a threshold prune.
    Unreachable,
    /// The node is temporarily inadmissible (e.g. not yet in the incremental
    /// SPT of §5.3). It is skipped and *does* count as a threshold prune,
    /// because a larger τ might admit it later.
    Deferred,
}

/// How a [`Searcher::search`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A goal node was settled at the given distance; its chain can be read
    /// with [`Searcher::chain_to_root`] until the next search.
    Found {
        /// The goal node that was settled.
        node: NodeId,
        /// Its final (constrained) distance from the nearest source.
        dist: Length,
    },
    /// The frontier emptied, but at least one node was pruned by the
    /// threshold τ (or deferred): the goal may still be reachable with a
    /// larger τ. This is `TestLB` returning "ω(sp(S)) > τ".
    ExhaustedBounded,
    /// The frontier emptied and nothing was τ-pruned or deferred: the
    /// constrained space simply contains no path to the goal. Callers drop
    /// the subspace instead of retrying forever (see DESIGN.md §3).
    ExhaustedComplete,
    /// The cancel hook fired mid-search (deadline / cooperative
    /// cancellation). Distance labels are partial; the caller must
    /// discard the query's results.
    Aborted,
}

/// Heap discipline of a [`Searcher::search`] run.
///
/// The settle-once search is only allowed to trust a settled node's label
/// when its expansion order is compatible with the heuristic:
///
/// * [`Astar`](SearchOrder::Astar) orders the heap by `g + h` — maximal
///   pruning, but **requires a consistent heuristic** (`h(u) ≤ ω(u,v) +
///   h(v)`; landmark/ALT bounds and exact-distance oracles qualify).
///   With a merely admissible `h` it can settle the goal at a
///   suboptimal distance.
/// * [`Dijkstra`](SearchOrder::Dijkstra) orders the heap by `g` alone and
///   uses `h` only to prune `g + h > τ` frontier entries. Correct for
///   **any admissible** `h`, at the cost of a larger exploration area.
///   This is what the mixed exact/fallback bounds of `SPT_P` (§5.2)
///   need: exact partial-SPT distances next to Eq. (2) fallbacks are
///   admissible but not consistent across the SPT boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOrder {
    /// Order by `g + h` (requires consistent heuristic).
    #[default]
    Astar,
    /// Order by `g`; heuristic prunes only. Safe for inconsistent `h`.
    Dijkstra,
}

/// A reusable constrained best-first search.
///
/// One instance holds all scratch arrays for a node universe of size `n`;
/// every call to [`search`](Searcher::search) resets them in `O(1)`.
/// Constraints are supplied per call:
///
/// * `edge_filter(u, e)` — structural constraint: return `false` to forbid
///   the edge (subspace prefix nodes, excluded edge sets `X_u`).
/// * `estimate(v)` — heuristic / admissibility verdict (see [`Estimate`]).
/// * `is_goal(v)` — goal predicate, tested when a node is *settled* (its
///   distance is then final, as in Alg. 5 line 5).
/// * `bound` — the threshold τ of `TestLB`; `None` means unbounded.
#[derive(Debug)]
pub struct Searcher {
    heap: IndexedKaryHeap<Length, SEARCH_HEAP_ARITY>,
    dist: TimestampedMap<Length>,
    parent: TimestampedMap<NodeId>,
    settled: TimestampedSet,
    settled_count: usize,
    relaxed_edges: usize,
    pruned_count: usize,
}

impl Searcher {
    /// A searcher over node ids `0..n`.
    pub fn new(n: usize) -> Self {
        Searcher {
            heap: IndexedKaryHeap::new(n),
            dist: TimestampedMap::new(n, INFINITE_LENGTH),
            parent: TimestampedMap::new(n, NO_PARENT),
            settled: TimestampedSet::new(n),
            settled_count: 0,
            relaxed_edges: 0,
            pruned_count: 0,
        }
    }

    /// Node universe size.
    pub fn capacity(&self) -> usize {
        self.settled.capacity()
    }

    /// Run a search. See the type-level docs for the callback contracts.
    ///
    /// `sources` seed the queue with initial distances (normally one node at
    /// the subspace prefix length, or a whole target set at 0). Sources are
    /// themselves subject to `estimate` and `bound`.
    ///
    /// Equivalent to [`search_ctl`](Searcher::search_ctl) with
    /// [`SearchOrder::Astar`] and no cancel hook.
    #[allow(clippy::too_many_arguments)]
    pub fn search(
        &mut self,
        g: &Graph,
        direction: Direction,
        sources: impl IntoIterator<Item = (NodeId, Length)>,
        edge_filter: impl FnMut(NodeId, EdgeRef) -> bool,
        estimate: impl FnMut(NodeId) -> Estimate,
        is_goal: impl FnMut(NodeId) -> bool,
        bound: Option<Length>,
    ) -> SearchOutcome {
        self.search_ctl(
            g,
            direction,
            sources,
            edge_filter,
            estimate,
            is_goal,
            bound,
            SearchOrder::Astar,
            || false,
        )
    }

    /// [`search`](Searcher::search) with full control: an explicit heap
    /// [`SearchOrder`] and a cooperative `cancel` hook, polled every
    /// [`CANCEL_POLL_STRIDE`] settled nodes. When `cancel` returns `true`
    /// the run stops with [`SearchOutcome::Aborted`] and all labels of the
    /// run must be treated as garbage.
    #[allow(clippy::too_many_arguments)]
    pub fn search_ctl(
        &mut self,
        g: &Graph,
        direction: Direction,
        sources: impl IntoIterator<Item = (NodeId, Length)>,
        mut edge_filter: impl FnMut(NodeId, EdgeRef) -> bool,
        mut estimate: impl FnMut(NodeId) -> Estimate,
        mut is_goal: impl FnMut(NodeId) -> bool,
        bound: Option<Length>,
        order: SearchOrder,
        mut cancel: impl FnMut() -> bool,
    ) -> SearchOutcome {
        self.heap.clear();
        self.dist.reset();
        self.parent.reset();
        self.settled.clear();
        self.settled_count = 0;
        self.relaxed_edges = 0;
        let mut prunes = 0usize;

        // Returns the heap key for an admissible node: f = g + h under
        // Astar order, plain g under Dijkstra order (h still prunes).
        let mut admit = |v: NodeId, d: Length, prunes: &mut usize| -> Option<Length> {
            match estimate(v) {
                Estimate::Bound(h) => {
                    let f = d.saturating_add(h);
                    match bound {
                        Some(tau) if f > tau => {
                            *prunes += 1;
                            None
                        }
                        _ => Some(match order {
                            SearchOrder::Astar => f,
                            SearchOrder::Dijkstra => d,
                        }),
                    }
                }
                Estimate::Unreachable => None,
                Estimate::Deferred => {
                    *prunes += 1;
                    None
                }
            }
        };

        let outcome = 'run: {
            for (s, d0) in sources {
                if d0 < self.dist.get(s as usize) {
                    if let Some(f) = admit(s, d0, &mut prunes) {
                        self.dist.set(s as usize, d0);
                        self.heap.push_or_decrease(s as usize, f);
                    }
                }
            }

            while let Some((u, _f)) = self.heap.pop() {
                let u_node = u as NodeId;
                self.settled.insert(u);
                self.settled_count += 1;
                if self.settled_count.is_multiple_of(CANCEL_POLL_STRIDE) && cancel() {
                    break 'run SearchOutcome::Aborted;
                }
                let du = self.dist.get(u);
                if is_goal(u_node) {
                    break 'run SearchOutcome::Found {
                        node: u_node,
                        dist: du,
                    };
                }
                for &e in direction.edges(g, u_node) {
                    self.relaxed_edges += 1;
                    let v = e.to as usize;
                    if self.settled.contains(v) || !edge_filter(u_node, e) {
                        continue;
                    }
                    let nd = du.saturating_add(e.weight as Length);
                    if nd < self.dist.get(v) {
                        if let Some(f) = admit(e.to, nd, &mut prunes) {
                            self.dist.set(v, nd);
                            self.parent.set(v, u_node);
                            self.heap.push_or_decrease(v, f);
                        }
                    }
                }
            }

            if prunes > 0 {
                SearchOutcome::ExhaustedBounded
            } else {
                SearchOutcome::ExhaustedComplete
            }
        };
        self.pruned_count = prunes;
        outcome
    }

    /// The (final, if settled) distance label of `v` from the last search.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Length {
        self.dist.get(v as usize)
    }

    /// True if `v` was settled in the last search.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.settled.contains(v as usize)
    }

    /// Number of nodes settled in the last search (the paper's exploration
    /// area `n'`).
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Number of edges relaxed in the last search (`m'`).
    pub fn relaxed_edges(&self) -> usize {
        self.relaxed_edges
    }

    /// Number of frontier entries the last search discarded because of
    /// the threshold τ or a [`Estimate::Deferred`] verdict — the paper's
    /// lower-bound prunes. 0 after [`SearchOutcome::ExhaustedComplete`].
    pub fn pruned_count(&self) -> usize {
        self.pruned_count
    }

    /// The parent pointer of `v` from the last search ([`NO_PARENT`] for
    /// seeds and unlabeled nodes). The allocation-free primitive behind
    /// [`chain_to_root`](Searcher::chain_to_root).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent.get(v as usize)
    }

    /// The parent-pointer chain `v, parent(v), …, root` from the last
    /// search, pushed into `buf` (`v` first). Returns the number of nodes
    /// pushed. Allocation-free when `buf` has capacity.
    ///
    /// # Panics
    /// Panics if `v` carries no label from the last search.
    pub fn extend_chain_to_root(&self, v: NodeId, buf: &mut Vec<NodeId>) -> usize {
        assert!(
            self.dist.is_set(v as usize),
            "node {v} was not labeled in the last search"
        );
        let before = buf.len();
        buf.push(v);
        let mut cur = v;
        while self.parent.get(cur as usize) != NO_PARENT {
            cur = self.parent.get(cur as usize);
            buf.push(cur);
        }
        buf.len() - before
    }

    /// The parent-pointer chain `v, parent(v), …, root` from the last
    /// search (so: reversed path for `Direction::Forward` searches).
    ///
    /// # Panics
    /// Panics if `v` carries no label from the last search.
    pub fn chain_to_root(&self, v: NodeId) -> Vec<NodeId> {
        assert!(
            self.dist.is_set(v as usize),
            "node {v} was not labeled in the last search"
        );
        let mut chain = vec![v];
        let mut cur = v;
        while self.parent.get(cur as usize) != NO_PARENT {
            cur = self.parent.get(cur as usize);
            chain.push(cur);
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    /// 0→1→2→3 with weights 1,2,3 and a shortcut 0→3 (weight 10).
    fn g() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 2).unwrap();
        b.add_edge(2, 3, 3).unwrap();
        b.add_edge(0, 3, 10).unwrap();
        b.build()
    }

    fn dijkstra_to(
        s: &mut Searcher,
        graph: &Graph,
        from: NodeId,
        to: NodeId,
        bound: Option<Length>,
    ) -> SearchOutcome {
        s.search(
            graph,
            Direction::Forward,
            [(from, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v == to,
            bound,
        )
    }

    #[test]
    fn finds_shortest_path_and_chain() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        let out = dijkstra_to(&mut s, &graph, 0, 3, None);
        assert_eq!(out, SearchOutcome::Found { node: 3, dist: 6 });
        let mut chain = s.chain_to_root(3);
        chain.reverse();
        assert_eq!(chain, vec![0, 1, 2, 3]);
        assert!(s.settled_count() >= 4);
    }

    #[test]
    fn goal_at_source_is_found_immediately() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        let out = dijkstra_to(&mut s, &graph, 2, 2, None);
        assert_eq!(out, SearchOutcome::Found { node: 2, dist: 0 });
        assert_eq!(s.chain_to_root(2), vec![2]);
    }

    #[test]
    fn unreachable_goal_is_exhausted_complete() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        let out = dijkstra_to(&mut s, &graph, 0, 4, None);
        assert_eq!(out, SearchOutcome::ExhaustedComplete);
    }

    #[test]
    fn bound_prunes_and_reports_bounded() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        // True distance is 6; τ = 4 must yield ExhaustedBounded.
        let out = dijkstra_to(&mut s, &graph, 0, 3, Some(4));
        assert_eq!(out, SearchOutcome::ExhaustedBounded);
        // τ = 6 admits the goal exactly (Alg. 5 line 10 keeps f ≤ τ).
        let out = dijkstra_to(&mut s, &graph, 0, 3, Some(6));
        assert_eq!(out, SearchOutcome::Found { node: 3, dist: 6 });
    }

    #[test]
    fn edge_filter_excludes_edges() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        // Forbid the edge 1→2: only the shortcut remains.
        let out = s.search(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |u, e| !(u == 1 && e.to == 2),
            |_| Estimate::Bound(0),
            |v| v == 3,
            None,
        );
        assert_eq!(out, SearchOutcome::Found { node: 3, dist: 10 });
    }

    #[test]
    fn heuristic_guides_astar_to_same_answer() {
        let graph = g();
        // Exact remaining distances to node 3 (a perfect, consistent h).
        let h = [6u64, 5, 3, 0, u64::MAX];
        let mut s = Searcher::new(graph.node_count());
        let out = s.search(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |_, _| true,
            |v| {
                if h[v as usize] == u64::MAX {
                    Estimate::Unreachable
                } else {
                    Estimate::Bound(h[v as usize])
                }
            },
            |v| v == 3,
            None,
        );
        assert_eq!(out, SearchOutcome::Found { node: 3, dist: 6 });
        // A perfect heuristic settles only the path nodes.
        assert_eq!(s.settled_count(), 4);
    }

    #[test]
    fn deferred_counts_as_bounded() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        // Defer node 1 — only the shortcut remains, but pruning must be
        // reported even though a path was *not* found under the bound.
        let out = s.search(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |_, _| true,
            |v| {
                if v == 1 {
                    Estimate::Deferred
                } else {
                    Estimate::Bound(0)
                }
            },
            |v| v == 3,
            Some(7),
        );
        assert_eq!(out, SearchOutcome::ExhaustedBounded);
    }

    #[test]
    fn unreachable_estimate_does_not_mark_bounded() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        // Node 4 is never reached anyway; marking 3 unreachable and asking
        // for goal 3 exhausts with Complete (no τ-prunes happened).
        let out = s.search(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |_, _| true,
            |v| {
                if v == 3 {
                    Estimate::Unreachable
                } else {
                    Estimate::Bound(0)
                }
            },
            |v| v == 3,
            None,
        );
        assert_eq!(out, SearchOutcome::ExhaustedComplete);
    }

    #[test]
    fn backward_search_reaches_sources_of_edges() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        let out = s.search(
            &graph,
            Direction::Backward,
            [(3, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v == 0,
            None,
        );
        assert_eq!(out, SearchOutcome::Found { node: 0, dist: 6 });
        // Chain from 0 to root 3 is the forward path 0,1,2,3.
        assert_eq!(s.chain_to_root(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_source_uses_nearest_source() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        let out = s.search(
            &graph,
            Direction::Forward,
            [(0, 100), (2, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v == 3,
            None,
        );
        assert_eq!(out, SearchOutcome::Found { node: 3, dist: 3 });
    }

    #[test]
    fn dijkstra_order_survives_inconsistent_heuristic() {
        // 0→2 (10), 2→3 (100), 0→1 (1), 1→2 (1): true 0–3 distance is
        // 102 via 0→1→2→3. h(1)=101 is exact, h(2)=0 a weak fallback —
        // admissible but inconsistent across 1→2 (101 > 1 + 0). Under
        // Astar order node 2 is settled at f=10 with suboptimal g=10
        // before node 1 (f=102) can relax it to g=2, so the settle-once
        // search returns 110. Dijkstra order must return the true 102.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2, 10).unwrap();
        b.add_edge(2, 3, 100).unwrap();
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let graph = b.build();
        let h = [0u64, 101, 0, 0];
        let mut s = Searcher::new(graph.node_count());
        let run = |s: &mut Searcher, order| {
            s.search_ctl(
                &graph,
                Direction::Forward,
                [(0, 0)],
                |_, _| true,
                |v| Estimate::Bound(h[v as usize]),
                |v| v == 3,
                Some(200),
                order,
                || false,
            )
        };
        assert_eq!(
            run(&mut s, SearchOrder::Astar),
            SearchOutcome::Found { node: 3, dist: 110 }
        );
        assert_eq!(
            run(&mut s, SearchOrder::Dijkstra),
            SearchOutcome::Found { node: 3, dist: 102 }
        );
    }

    #[test]
    fn dijkstra_order_still_prunes_by_bound() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        let out = s.search_ctl(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v == 3,
            Some(4),
            SearchOrder::Dijkstra,
            || false,
        );
        assert_eq!(out, SearchOutcome::ExhaustedBounded);
    }

    #[test]
    fn cancel_hook_aborts_search() {
        // A long chain so the poll stride is crossed.
        let n = CANCEL_POLL_STRIDE * 4;
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId, 1).unwrap();
        }
        let graph = b.build();
        let mut s = Searcher::new(graph.node_count());
        let out = s.search_ctl(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v as usize == n - 1,
            None,
            SearchOrder::Astar,
            || true,
        );
        assert_eq!(out, SearchOutcome::Aborted);
        // The scratch is reset by the next search: results stay correct.
        let out = s.search(
            &graph,
            Direction::Forward,
            [(0, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v as usize == n - 1,
            None,
        );
        assert_eq!(
            out,
            SearchOutcome::Found {
                node: (n - 1) as NodeId,
                dist: (n - 1) as Length
            }
        );
    }

    #[test]
    fn scratch_reuse_is_clean_across_searches() {
        let graph = g();
        let mut s = Searcher::new(graph.node_count());
        dijkstra_to(&mut s, &graph, 0, 3, None);
        let out = dijkstra_to(&mut s, &graph, 1, 3, None);
        assert_eq!(out, SearchOutcome::Found { node: 3, dist: 5 });
        let mut chain = s.chain_to_root(3);
        chain.reverse();
        assert_eq!(chain, vec![1, 2, 3]);
        assert!(!s.dist.is_set(0));
    }
}
