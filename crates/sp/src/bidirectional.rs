//! Bidirectional Dijkstra for point-to-point shortest paths.
//!
//! Not used by the KPJ query algorithms themselves (their searches are
//! one-to-category), but part of the shortest-path substrate: the workload
//! tooling uses it for spot-checking distances on large graphs where a
//! full [`DenseDijkstra`](crate::DenseDijkstra) would be wasteful, and it
//! serves as an independent oracle in the test suites.

use kpj_graph::scratch::{TimestampedMap, TimestampedSet};
use kpj_graph::{Graph, Length, NodeId, INFINITE_LENGTH};
use kpj_heap::IndexedMinHeap;

use crate::{Direction, NO_PARENT};

/// Reusable scratch for bidirectional point-to-point queries.
#[derive(Debug)]
pub struct BidirectionalDijkstra {
    fwd: Side,
    bwd: Side,
}

#[derive(Debug)]
struct Side {
    heap: IndexedMinHeap<Length>,
    dist: TimestampedMap<Length>,
    parent: TimestampedMap<NodeId>,
    settled: TimestampedSet,
}

impl Side {
    fn new(n: usize) -> Self {
        Side {
            heap: IndexedMinHeap::new(n),
            dist: TimestampedMap::new(n, INFINITE_LENGTH),
            parent: TimestampedMap::new(n, NO_PARENT),
            settled: TimestampedSet::new(n),
        }
    }

    fn reset(&mut self, seed: NodeId) {
        self.heap.clear();
        self.dist.reset();
        self.parent.reset();
        self.settled.clear();
        self.dist.set(seed as usize, 0);
        self.heap.push_or_decrease(seed as usize, 0);
    }

    /// Settle one node and relax its edges; returns the settled node.
    fn step(&mut self, g: &Graph, dir: Direction) -> Option<(NodeId, Length)> {
        let (u, du) = self.heap.pop()?;
        self.settled.insert(u);
        for e in dir.edges(g, u as NodeId) {
            let v = e.to as usize;
            if self.settled.contains(v) {
                continue;
            }
            let nd = du.saturating_add(e.weight as Length);
            if nd < self.dist.get(v) {
                self.dist.set(v, nd);
                self.parent.set(v, u as NodeId);
                self.heap.push_or_decrease(v, nd);
            }
        }
        Some((u as NodeId, du))
    }
}

/// A point-to-point result: distance and the full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointToPoint {
    /// `δ(s, t)`.
    pub distance: Length,
    /// One shortest path `s → … → t`.
    pub nodes: Vec<NodeId>,
}

impl BidirectionalDijkstra {
    /// Scratch for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        BidirectionalDijkstra {
            fwd: Side::new(n),
            bwd: Side::new(n),
        }
    }

    /// Compute one shortest `s → t` path, or `None` if unreachable.
    ///
    /// Classic alternating bidirectional Dijkstra with the standard
    /// termination criterion: stop when `top_f + top_b ≥ μ`, where `μ` is
    /// the best meeting-point distance seen so far.
    pub fn query(&mut self, g: &Graph, s: NodeId, t: NodeId) -> Option<PointToPoint> {
        if s == t {
            return Some(PointToPoint {
                distance: 0,
                nodes: vec![s],
            });
        }
        self.fwd.reset(s);
        self.bwd.reset(t);
        let mut best: Length = INFINITE_LENGTH;
        let mut meet: Option<NodeId> = None;

        loop {
            let tf = self.fwd.heap.peek().map(|(_, k)| k);
            let tb = self.bwd.heap.peek().map(|(_, k)| k);
            match (tf, tb) {
                (None, None) => break,
                (Some(a), Some(b)) if a.saturating_add(b) >= best => break,
                _ => {}
            }
            // Expand the side with the smaller frontier key (balanced).
            let forward = match (tf, tb) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("handled above"),
            };
            let (side, other, dir) = if forward {
                (&mut self.fwd, &self.bwd, Direction::Forward)
            } else {
                (&mut self.bwd, &self.fwd, Direction::Backward)
            };
            if let Some((u, du)) = side.step(g, dir) {
                let od = other.dist.get(u as usize);
                if od != INFINITE_LENGTH {
                    let total = du + od;
                    if total < best {
                        best = total;
                        meet = Some(u);
                    }
                }
            }
        }

        let meet = meet?;
        // Stitch the two half-paths at the meeting node.
        let mut nodes = Vec::new();
        let mut cur = meet;
        loop {
            nodes.push(cur);
            let p = self.fwd.parent.get(cur as usize);
            if p == NO_PARENT {
                break;
            }
            cur = p;
        }
        nodes.reverse();
        let mut cur = meet;
        while self.bwd.parent.get(cur as usize) != NO_PARENT {
            cur = self.bwd.parent.get(cur as usize);
            nodes.push(cur);
        }
        debug_assert_eq!(nodes.first(), Some(&s));
        debug_assert_eq!(nodes.last(), Some(&t));
        Some(PointToPoint {
            distance: best,
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseDijkstra;
    use kpj_graph::GraphBuilder;

    fn grid(side: u32) -> Graph {
        let mut b = GraphBuilder::new((side * side) as usize);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_bidirectional(v, v + 1, 1 + (v % 3)).unwrap();
                }
                if r + 1 < side {
                    b.add_bidirectional(v, v + side, 1 + (v % 5)).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_unidirectional_on_grid() {
        let g = grid(8);
        let mut bd = BidirectionalDijkstra::new(g.node_count());
        for s in [0u32, 5, 17, 63] {
            let d = DenseDijkstra::from_source(&g, s);
            for t in g.nodes() {
                let got = bd.query(&g, s, t).expect("grid is connected");
                assert_eq!(got.distance, d.dist(t), "{s}->{t}");
                // The returned path must realize that distance.
                let len: Length = got
                    .nodes
                    .windows(2)
                    .map(|w| g.edge_weight(w[0], w[1]).unwrap() as Length)
                    .sum();
                assert_eq!(len, got.distance);
                assert_eq!(got.nodes.first(), Some(&s));
                assert_eq!(got.nodes.last(), Some(&t));
            }
        }
    }

    #[test]
    fn trivial_and_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 4).unwrap();
        let g = b.build();
        let mut bd = BidirectionalDijkstra::new(3);
        assert_eq!(bd.query(&g, 2, 2).unwrap().distance, 0);
        assert_eq!(bd.query(&g, 0, 1).unwrap().distance, 4);
        assert!(bd.query(&g, 1, 0).is_none(), "edge is directed");
        assert!(bd.query(&g, 0, 2).is_none());
    }

    #[test]
    fn directed_asymmetry_is_respected() {
        // s → a → t is short forward; the reverse direction differs.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 0, 10).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build();
        let mut bd = BidirectionalDijkstra::new(4);
        assert_eq!(bd.query(&g, 0, 3).unwrap().distance, 3);
        assert!(bd.query(&g, 3, 0).is_none());
    }

    #[test]
    fn scratch_reuse_across_queries() {
        let g = grid(5);
        let mut bd = BidirectionalDijkstra::new(g.node_count());
        let a = bd.query(&g, 0, 24).unwrap();
        let _ = bd.query(&g, 3, 7).unwrap();
        let b2 = bd.query(&g, 0, 24).unwrap();
        assert_eq!(a.distance, b2.distance);
    }

    #[test]
    fn random_graphs_match_dense() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(2..40u32);
            let mut b = GraphBuilder::new(n as usize);
            for _ in 0..(n * 3) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    b.add_edge(u, v, rng.gen_range(0..50)).unwrap();
                }
            }
            let g = b.build();
            let mut bd = BidirectionalDijkstra::new(g.node_count());
            let s = rng.gen_range(0..n);
            let d = DenseDijkstra::from_source(&g, s);
            for t in g.nodes() {
                match bd.query(&g, s, t) {
                    Some(p) => assert_eq!(p.distance, d.dist(t), "seed {seed} {s}->{t}"),
                    None => assert!(!d.reached(t), "seed {seed} {s}->{t}"),
                }
            }
        }
    }
}
