//! Property-based tests for the shortest-path substrate: every search
//! implementation is checked against `DenseDijkstra` (itself unit-tested
//! against Bellman–Ford), and the bounded-search contract (the substrate
//! half of the paper's Lemma 5.1) is verified directly.

use kpj_graph::{Graph, GraphBuilder, Length};
use kpj_sp::{BidirectionalDijkstra, DenseDijkstra, Direction, Estimate, SearchOutcome, Searcher};
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    n: u32,
    edges: Vec<(u32, u32, u32)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2..25u32).prop_flat_map(|n| {
        vec((0..n, 0..n, 0..100u32), 1..90).prop_map(move |edges| Spec { n, edges })
    })
}

fn build(s: &Spec) -> Graph {
    let mut b = GraphBuilder::new(s.n as usize);
    for &(u, v, w) in &s.edges {
        if u != v {
            b.add_edge(u, v, w).unwrap();
        }
    }
    b.build()
}

proptest! {
    /// Unconstrained Searcher with zero heuristic = Dijkstra.
    #[test]
    fn searcher_matches_dense(s in spec(), src in 0..25u32, dst in 0..25u32) {
        let g = build(&s);
        let src = src % s.n;
        let dst = dst % s.n;
        let dense = DenseDijkstra::from_source(&g, src);
        let mut searcher = Searcher::new(g.node_count());
        let out = searcher.search(
            &g,
            Direction::Forward,
            [(src, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v == dst,
            None,
        );
        match out {
            SearchOutcome::Found { node, dist } => {
                prop_assert_eq!(node, dst);
                prop_assert_eq!(dist, dense.dist(dst));
                // The chain must realize the distance.
                let chain = searcher.chain_to_root(dst);
                let len: Length = chain
                    .windows(2)
                    .map(|w| g.edge_weight(w[1], w[0]).unwrap() as Length)
                    .sum();
                prop_assert_eq!(len, dist);
            }
            _ => prop_assert!(!dense.reached(dst)),
        }
    }

    /// Bounded-search contract (substrate Lemma 5.1): with bound τ the
    /// search finds the target iff δ ≤ τ, and never reports
    /// `ExhaustedComplete` when it merely ran out of budget.
    #[test]
    fn bounded_search_contract(s in spec(), src in 0..25u32, dst in 0..25u32, tau in 0..300u64) {
        let g = build(&s);
        let src = src % s.n;
        let dst = dst % s.n;
        let dense = DenseDijkstra::from_source(&g, src);
        let mut searcher = Searcher::new(g.node_count());
        let out = searcher.search(
            &g,
            Direction::Forward,
            [(src, 0)],
            |_, _| true,
            |_| Estimate::Bound(0),
            |v| v == dst,
            Some(tau),
        );
        let true_dist = dense.dist(dst);
        match out {
            SearchOutcome::Found { dist, .. } => {
                prop_assert_eq!(dist, true_dist);
                prop_assert!(dist <= tau);
            }
            SearchOutcome::ExhaustedBounded => {
                // Either truly beyond τ, or unreachable but with some
                // frontier pruned at τ (both are honest "> τ" answers).
                prop_assert!(true_dist > tau);
            }
            SearchOutcome::ExhaustedComplete => {
                prop_assert!(!dense.reached(dst));
            }
            SearchOutcome::Aborted => {
                prop_assert!(false, "no cancel hook was installed");
            }
        }
    }

    /// Backward searches compute distances on the reverse graph.
    #[test]
    fn backward_matches_reversed_dense(s in spec(), src in 0..25u32) {
        let g = build(&s);
        let src = src % s.n;
        // Distances *to* src along forward edges.
        let dense = DenseDijkstra::run(&g, Direction::Backward, [(src, 0)]);
        let mut searcher = Searcher::new(g.node_count());
        for goal in g.nodes() {
            let out = searcher.search(
                &g,
                Direction::Backward,
                [(src, 0)],
                |_, _| true,
                |_| Estimate::Bound(0),
                |v| v == goal,
                None,
            );
            match out {
                SearchOutcome::Found { dist, .. } => prop_assert_eq!(dist, dense.dist(goal)),
                _ => prop_assert!(!dense.reached(goal)),
            }
        }
    }

    /// Bidirectional point-to-point equals unidirectional everywhere.
    #[test]
    fn bidirectional_matches_dense(s in spec(), src in 0..25u32) {
        let g = build(&s);
        let src = src % s.n;
        let dense = DenseDijkstra::from_source(&g, src);
        let mut bd = BidirectionalDijkstra::new(g.node_count());
        for t in g.nodes() {
            match bd.query(&g, src, t) {
                Some(p) => {
                    prop_assert_eq!(p.distance, dense.dist(t));
                    let len: Length = p
                        .nodes
                        .windows(2)
                        .map(|w| g.edge_weight(w[0], w[1]).unwrap() as Length)
                        .sum();
                    prop_assert_eq!(len, p.distance);
                }
                None => prop_assert!(!dense.reached(t)),
            }
        }
    }

    /// A consistent non-zero heuristic (exact distances) never changes the
    /// answer, only the exploration.
    #[test]
    fn perfect_heuristic_preserves_answers(s in spec(), src in 0..25u32, dst in 0..25u32) {
        let g = build(&s);
        let src = src % s.n;
        let dst = dst % s.n;
        // Exact remaining distances to dst.
        let to_dst = DenseDijkstra::run(&g, Direction::Backward, [(dst, 0)]);
        let mut plain = Searcher::new(g.node_count());
        let plain_out = plain.search(
            &g, Direction::Forward, [(src, 0)], |_, _| true, |_| Estimate::Bound(0),
            |v| v == dst, None,
        );
        let mut astar = Searcher::new(g.node_count());
        let astar_out = astar.search(
            &g, Direction::Forward, [(src, 0)], |_, _| true,
            |v| {
                if to_dst.reached(v) {
                    Estimate::Bound(to_dst.dist(v))
                } else {
                    Estimate::Unreachable
                }
            },
            |v| v == dst, None,
        );
        match (plain_out, astar_out) {
            (SearchOutcome::Found { dist: a, .. }, SearchOutcome::Found { dist: b, .. }) => {
                prop_assert_eq!(a, b);
                prop_assert!(astar.settled_count() <= plain.settled_count());
            }
            (SearchOutcome::Found { .. }, other) => prop_assert!(false, "A* lost the path: {:?}", other),
            (_, SearchOutcome::Found { .. }) => prop_assert!(false, "A* hallucinated a path"),
            _ => {}
        }
    }
}
