//! Landmark (ALT) lower-bound index — §4.2 of the paper.
//!
//! A landmark set `L ⊆ V` with precomputed forward distance tables
//! `δ(w, ·)` for every `w ∈ L` yields, via the triangle inequality
//! `δ(w, u) + δ(u, v) ≥ δ(w, v)`, the lower bound
//!
//! ```text
//! lb(u, v) = max_{w ∈ L} ( δ(w, v) − δ(w, u) )        (clamped at 0)
//! ```
//!
//! For a whole destination set `V_T` the paper's Eq. (2) first collapses the
//! per-landmark distances to the *virtual target* `t`:
//! `δ(w, t) = min_{v ∈ V_T} δ(w, v)`, computed once per query in
//! `O(|L|·|V_T|)`, after which each `lb(u, V_T)` costs `O(|L|)`. The naive
//! Eq. (1) (`min_v max_w …`, `O(|L|·|V_T|)` per estimate) is kept as
//! [`QueryBounds::lb_to_targets_eq1`] for the tightness/throughput ablation.
//!
//! The index is built offline ([`LandmarkIndex::build`]) in
//! `O(|L|·(m + n log n))` with `O(|L|·n)` space, exactly as stated in the
//! paper's "Remarks & Time Complexity".

#![warn(missing_docs)]

mod persist;
mod repair;

pub use repair::RepairStats;

pub use persist::PersistError;

use kpj_graph::{Graph, GraphError, Length, NodeId, SectionBuf, INFINITE_LENGTH};
use kpj_sp::DenseDijkstra;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Batch shortest-path solver used by [`LandmarkIndex::build_with_solver`]:
/// for each `sources[i]`, writes the full forward distance array
/// `δ(sources[i], ·)` into `out[i*n .. (i+1)*n]`.
///
/// The default solver runs [`DenseDijkstra`] per source sequentially;
/// `kpj-core` provides one that fans the sources across its worker pool.
pub type RowSolver<'a> = dyn Fn(&Graph, &[NodeId], &mut [Length]) + 'a;

/// How landmarks are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// The paper's method (following Goldberg and Harrelson, SODA'05): pick a
    /// random start node, take the
    /// farthest node from it as the first landmark, then iteratively add
    /// the node farthest from the current landmark set.
    Farthest,
    /// Uniformly random landmarks (baseline for the ablation).
    Random,
}

/// The offline landmark index: `|L|` forward distance tables.
///
/// The tables are a [`SectionBuf`]: heap-backed when built online,
/// zero-copy views into an mmap'd v2 graph file when loaded by `kpj-store`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LandmarkIndex {
    landmarks: Vec<NodeId>,
    /// Row-major `|L| × n`: `tables[l * n + v] = δ(landmarks[l], v)`.
    tables: SectionBuf<Length>,
    node_count: usize,
}

impl LandmarkIndex {
    /// Build an index with `count` landmarks (capped at `n`).
    ///
    /// `seed` makes the random start (and `Random` strategy) reproducible.
    pub fn build(g: &Graph, count: usize, strategy: SelectionStrategy, seed: u64) -> Self {
        let n = g.node_count();
        let count = count.min(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut landmarks: Vec<NodeId> = Vec::with_capacity(count);
        let mut tables: Vec<Length> = Vec::with_capacity(count * n);

        if n == 0 || count == 0 {
            return Self::from_parts(landmarks, tables, n);
        }

        match strategy {
            SelectionStrategy::Random => {
                let mut chosen = vec![false; n];
                while landmarks.len() < count {
                    let v = rng.gen_range(0..n);
                    if !chosen[v] {
                        chosen[v] = true;
                        landmarks.push(v as NodeId);
                    }
                }
                for &l in &landmarks {
                    tables.extend(DenseDijkstra::from_source(g, l).into_dist());
                }
            }
            SelectionStrategy::Farthest => {
                // min_dist[v] = distance from the landmark set to v
                // (∞ ranks as farthest, so other components get covered).
                let start = rng.gen_range(0..n) as NodeId;
                let d0 = DenseDijkstra::from_source(g, start).into_dist();
                let first = farthest(&d0, &mut rng);
                let min_dist_first = DenseDijkstra::from_source(g, first).into_dist();
                let mut min_dist = min_dist_first.clone();
                landmarks.push(first);
                tables.extend(min_dist_first);
                while landmarks.len() < count {
                    let next = farthest(&min_dist, &mut rng);
                    if landmarks.contains(&next) {
                        // Whole graph already at distance 0 from the set:
                        // no farther node exists, stop early.
                        break;
                    }
                    let d = DenseDijkstra::from_source(g, next).into_dist();
                    for (m, &dv) in min_dist.iter_mut().zip(&d) {
                        *m = (*m).min(dv);
                    }
                    landmarks.push(next);
                    tables.extend(d);
                }
            }
        }
        Self::from_parts(landmarks, tables, n)
    }

    /// Like [`build`](Self::build), but shortest-path rows are produced by
    /// `solver` in batches of up to `batch` sources, enabling parallel
    /// offline construction while staying **bit-identical** to the
    /// sequential build for any `(strategy, seed)`.
    ///
    /// `Random` selection is trivially batchable: the landmark set is fixed
    /// before any distance is computed, so all rows go to the solver at
    /// once. `Farthest` selection is an inherently sequential chain — each
    /// pick depends on the min-distance field of all previous picks — so
    /// batches are *speculative*: the next pick is predicted exactly by
    /// replaying [`farthest`] on a **cloned** RNG (identical state ⇒
    /// identical tie-breaks), and the remaining batch slots are filled with
    /// the highest stale min-distance nodes (ties to the lowest id). The
    /// real RNG then advances by exactly the calls the sequential build
    /// makes; speculative rows are used on hit and recomputed on miss, so
    /// the resulting index never depends on speculation accuracy.
    pub fn build_with_solver(
        g: &Graph,
        count: usize,
        strategy: SelectionStrategy,
        seed: u64,
        batch: usize,
        solver: &RowSolver<'_>,
    ) -> Self {
        let n = g.node_count();
        let count = count.min(n);
        let batch = batch.max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut landmarks: Vec<NodeId> = Vec::with_capacity(count);
        let mut tables: Vec<Length> = Vec::with_capacity(count * n);

        if n == 0 || count == 0 {
            return Self::from_parts(landmarks, tables, n);
        }

        match strategy {
            SelectionStrategy::Random => {
                let mut chosen = vec![false; n];
                while landmarks.len() < count {
                    let v = rng.gen_range(0..n);
                    if !chosen[v] {
                        chosen[v] = true;
                        landmarks.push(v as NodeId);
                    }
                }
                tables.resize(landmarks.len() * n, 0);
                solver(g, &landmarks, &mut tables);
            }
            SelectionStrategy::Farthest => {
                let start = rng.gen_range(0..n) as NodeId;
                let mut d0 = vec![0; n];
                solver(g, std::slice::from_ref(&start), &mut d0);
                let first = farthest(&d0, &mut rng);
                let mut min_dist = vec![0; n];
                solver(g, std::slice::from_ref(&first), &mut min_dist);
                landmarks.push(first);
                tables.extend_from_slice(&min_dist);

                let mut spec_rows: Vec<Length> = Vec::new();
                let mut row_buf: Vec<Length> = vec![0; n];
                'outer: while landmarks.len() < count {
                    // Speculate a batch of candidate landmarks.
                    let want = batch.min(count - landmarks.len());
                    let mut cands: Vec<NodeId> = Vec::with_capacity(want);
                    cands.push(farthest(&min_dist, &mut rng.clone()));
                    while cands.len() < want {
                        let mut best: Option<usize> = None;
                        for (v, &d) in min_dist.iter().enumerate() {
                            let vid = v as NodeId;
                            if cands.contains(&vid) || landmarks.contains(&vid) {
                                continue;
                            }
                            match best {
                                Some(b) if d <= min_dist[b] => {}
                                _ => best = Some(v),
                            }
                        }
                        match best {
                            Some(v) => cands.push(v as NodeId),
                            None => break,
                        }
                    }
                    spec_rows.resize(cands.len() * n, 0);
                    solver(g, &cands, &mut spec_rows);
                    let mut used = vec![false; cands.len()];

                    // Consume: replay the exact RNG calls the sequential
                    // build makes, drawing rows from the batch when the
                    // prediction held and recomputing when it went stale.
                    loop {
                        if landmarks.len() >= count {
                            break 'outer;
                        }
                        let next = farthest(&min_dist, &mut rng);
                        if landmarks.contains(&next) {
                            break 'outer;
                        }
                        let hit = cands.iter().position(|&c| c == next).filter(|&j| !used[j]);
                        let row: &[Length] = match hit {
                            Some(j) => {
                                used[j] = true;
                                &spec_rows[j * n..(j + 1) * n]
                            }
                            None => {
                                solver(g, std::slice::from_ref(&next), &mut row_buf);
                                &row_buf
                            }
                        };
                        for (m, &dv) in min_dist.iter_mut().zip(row) {
                            *m = (*m).min(dv);
                        }
                        landmarks.push(next);
                        tables.extend_from_slice(row);
                        if hit.is_none() || used.iter().all(|&u| u) {
                            break; // speculation exhausted or stale: restock
                        }
                    }
                }
            }
        }
        Self::from_parts(landmarks, tables, n)
    }

    /// The chosen landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of landmarks `|L|`.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// True if the index has no landmarks (all bounds degrade to 0).
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// Node universe size the index was built for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The distance table row of landmark `l` (`δ(w_l, ·)`).
    #[inline]
    fn row(&self, l: usize) -> &[Length] {
        &self.tables[l * self.node_count..(l + 1) * self.node_count]
    }

    /// `δ(w_l, v)` for the `l`-th landmark — the raw table entry. Exposed
    /// so callers can derive custom bound combinations (e.g. the GKPJ
    /// virtual-source bound `max_w ( δ(w,v) − max_{s ∈ V_S} δ(w,s) )`).
    #[inline]
    pub fn landmark_distance(&self, l: usize, v: NodeId) -> Length {
        self.row(l)[v as usize]
    }

    /// `lb(u, v)`: a lower bound on `δ(u, v)`.
    ///
    /// Per-landmark terms: with `δ(w,u) = ∞` the landmark proves nothing
    /// (skipped); with `δ(w,u) < ∞` but `δ(w,v) = ∞`, `v` is provably
    /// unreachable from `u` (else `w` would reach it through `u`) and the
    /// bound is [`INFINITE_LENGTH`].
    pub fn lower_bound(&self, u: NodeId, v: NodeId) -> Length {
        let mut lb: Length = 0;
        for l in 0..self.landmarks.len() {
            let row = self.row(l);
            let du = row[u as usize];
            if du == INFINITE_LENGTH {
                continue;
            }
            let dv = row[v as usize];
            if dv == INFINITE_LENGTH {
                return INFINITE_LENGTH;
            }
            lb = lb.max(dv.saturating_sub(du));
        }
        lb
    }

    /// Reassemble an index from raw parts (used by deserialization).
    pub(crate) fn from_parts(
        landmarks: Vec<NodeId>,
        tables: Vec<Length>,
        node_count: usize,
    ) -> Self {
        debug_assert_eq!(tables.len(), landmarks.len() * node_count);
        LandmarkIndex {
            landmarks,
            tables: tables.into(),
            node_count,
        }
    }

    /// Reassemble an index from validated raw parts, e.g. landmark ids
    /// parsed from a v2 file header plus a zero-copy mapped table section.
    pub fn from_raw(
        landmarks: Vec<NodeId>,
        tables: SectionBuf<Length>,
        node_count: usize,
    ) -> Result<Self, GraphError> {
        let bad = |message: String| GraphError::Parse { line: 0, message };
        if tables.len() != landmarks.len() * node_count {
            return Err(bad(format!(
                "landmark table has {} entries, want |L|·n = {}·{}",
                tables.len(),
                landmarks.len(),
                node_count
            )));
        }
        if let Some(&l) = landmarks.iter().find(|&&l| l as usize >= node_count) {
            return Err(GraphError::NodeOutOfRange {
                node: l as u64,
                node_count: node_count as u64,
            });
        }
        Ok(LandmarkIndex {
            landmarks,
            tables,
            node_count,
        })
    }

    /// The raw row-major `|L| × n` distance table (what the v2 writer
    /// serializes).
    pub fn tables(&self) -> &[Length] {
        &self.tables
    }

    /// True if the distance tables are backed by a memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.tables.is_mapped()
    }

    /// Per-query preprocessing for a destination set: computes
    /// `δ(w, t) = min_{v ∈ V_T} δ(w, v)` for every landmark in
    /// `O(|L| · |V_T|)` (the paper's initialization phase).
    pub fn for_targets(&self, targets: &[NodeId]) -> QueryBounds<'_> {
        let dist_to_t = (0..self.landmarks.len())
            .map(|l| {
                let row = self.row(l);
                targets
                    .iter()
                    .map(|&v| row[v as usize])
                    .min()
                    .unwrap_or(INFINITE_LENGTH)
            })
            .collect();
        QueryBounds {
            index: self,
            dist_to_t,
        }
    }
}

/// Index of the maximum value, breaking ties randomly; `∞` ranks highest.
fn farthest(dist: &[Length], rng: &mut SmallRng) -> NodeId {
    let mut best = 0usize;
    let mut ties = 1u32;
    for (i, &d) in dist.iter().enumerate().skip(1) {
        if d > dist[best] {
            best = i;
            ties = 1;
        } else if d == dist[best] {
            ties += 1;
            if rng.gen_range(0..ties) == 0 {
                best = i;
            }
        }
    }
    best as NodeId
}

/// Per-query lower-bound oracle for one destination set (Eq. (2)).
#[derive(Debug, Clone)]
pub struct QueryBounds<'a> {
    index: &'a LandmarkIndex,
    /// `dist_to_t[l] = δ(w_l, t)`.
    dist_to_t: Vec<Length>,
}

impl QueryBounds<'_> {
    /// Eq. (2): `lb(u, V_T) = max_w ( δ(w, t) − δ(w, u) )` in `O(|L|)`.
    ///
    /// Returns [`INFINITE_LENGTH`] when some landmark proves `V_T`
    /// unreachable from `u`, and 0 when no landmark proves anything.
    pub fn lb_to_targets(&self, u: NodeId) -> Length {
        let mut lb: Length = 0;
        for (l, &dt) in self.dist_to_t.iter().enumerate() {
            let du = self.index.row(l)[u as usize];
            if du == INFINITE_LENGTH {
                continue;
            }
            if dt == INFINITE_LENGTH {
                return INFINITE_LENGTH;
            }
            lb = lb.max(dt.saturating_sub(du));
        }
        lb
    }

    /// Eq. (1): `lb(u, V_T) = min_{v ∈ V_T} lb(u, v)` in `O(|L| · |V_T|)`.
    ///
    /// Tighter than Eq. (2) but too slow for hot loops (the paper's reason
    /// for introducing Eq. (2)); kept for the ablation benchmark.
    pub fn lb_to_targets_eq1(&self, u: NodeId, targets: &[NodeId]) -> Length {
        targets
            .iter()
            .map(|&v| self.index.lower_bound(u, v))
            .min()
            .unwrap_or(INFINITE_LENGTH)
    }

    /// The underlying offline index.
    pub fn index(&self) -> &LandmarkIndex {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    fn grid3x3() -> Graph {
        // 3×3 bidirectional grid, unit weights.
        let mut b = GraphBuilder::new(9);
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    b.add_bidirectional(v, v + 1, 1).unwrap();
                }
                if r + 1 < 3 {
                    b.add_bidirectional(v, v + 3, 1).unwrap();
                }
            }
        }
        b.build()
    }

    fn true_dist(g: &Graph, u: NodeId, v: NodeId) -> Length {
        DenseDijkstra::from_source(g, u).dist(v)
    }

    #[test]
    fn bounds_are_valid_lower_bounds() {
        let g = grid3x3();
        for strategy in [SelectionStrategy::Farthest, SelectionStrategy::Random] {
            let idx = LandmarkIndex::build(&g, 3, strategy, 7);
            assert_eq!(idx.len(), 3);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert!(
                        idx.lower_bound(u, v) <= true_dist(&g, u, v),
                        "lb({u},{v}) exceeds true distance ({strategy:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn landmark_to_anywhere_bound_is_exact() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 1);
        // From a landmark itself the bound must equal the true distance.
        let w = idx.landmarks()[0];
        for v in g.nodes() {
            assert_eq!(idx.lower_bound(w, v), true_dist(&g, w, v));
        }
    }

    #[test]
    fn eq2_matches_definition_and_is_dominated_by_eq1() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, 3);
        let targets = [2u32, 6];
        let qb = idx.for_targets(&targets);
        for u in g.nodes() {
            let true_to_set = targets.iter().map(|&t| true_dist(&g, u, t)).min().unwrap();
            let lb2 = qb.lb_to_targets(u);
            let lb1 = qb.lb_to_targets_eq1(u, &targets);
            assert!(lb2 <= true_to_set, "Eq.(2) must lower-bound δ(u, V_T)");
            assert!(lb1 <= true_to_set, "Eq.(1) must lower-bound δ(u, V_T)");
            assert!(lb2 <= lb1, "Eq.(2) is never tighter than Eq.(1)");
        }
    }

    #[test]
    fn unreachable_targets_give_infinite_bound() {
        // Two components: 0-1 and 2-3.
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(2, 3, 1).unwrap();
        let g = b.build();
        // Farthest selection jumps across components, so with 2 landmarks
        // both components hold one.
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 5);
        let qb = idx.for_targets(&[3]);
        assert_eq!(qb.lb_to_targets(0), INFINITE_LENGTH);
        assert!(qb.lb_to_targets(2) <= 1);
    }

    #[test]
    fn empty_target_set_is_unreachable() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 5);
        let qb = idx.for_targets(&[]);
        assert_eq!(qb.lb_to_targets(0), INFINITE_LENGTH);
        assert_eq!(qb.lb_to_targets_eq1(0, &[]), INFINITE_LENGTH);
    }

    #[test]
    fn zero_landmarks_degrade_to_zero_bounds() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 0, SelectionStrategy::Farthest, 5);
        assert!(idx.is_empty());
        assert_eq!(idx.lower_bound(0, 8), 0);
        let qb = idx.for_targets(&[8]);
        assert_eq!(qb.lb_to_targets(0), 0);
    }

    #[test]
    fn farthest_selection_spreads_landmarks() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 11);
        let [a, b] = [idx.landmarks()[0], idx.landmarks()[1]];
        // In a 3×3 grid two farthest-selected landmarks are ≥ 2 apart.
        assert!(true_dist(&g, a, b) >= 2, "landmarks {a},{b} too close");
    }

    #[test]
    fn count_capped_at_node_count() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 100, SelectionStrategy::Random, 2);
        assert!(idx.len() <= 9);
    }

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let g = grid3x3();
        let a = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 9);
        let b = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 9);
        assert_eq!(a.landmarks(), b.landmarks());
    }

    /// The sequential reference solver for [`build_with_solver`].
    fn seq_solver(g: &Graph, sources: &[NodeId], out: &mut [Length]) {
        let n = g.node_count();
        for (i, &s) in sources.iter().enumerate() {
            out[i * n..(i + 1) * n].copy_from_slice(DenseDijkstra::from_source(g, s).dist_slice());
        }
    }

    #[test]
    fn batched_build_is_bit_identical_to_sequential() {
        let g = grid3x3();
        for strategy in [SelectionStrategy::Farthest, SelectionStrategy::Random] {
            for seed in 0..6u64 {
                for count in [1usize, 3, 5, 9] {
                    let reference = LandmarkIndex::build(&g, count, strategy, seed);
                    for batch in [1usize, 2, 4, 16] {
                        let batched = LandmarkIndex::build_with_solver(
                            &g,
                            count,
                            strategy,
                            seed,
                            batch,
                            &seq_solver,
                        );
                        assert_eq!(
                            batched, reference,
                            "{strategy:?} seed={seed} count={count} batch={batch}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_build_handles_disconnected_graphs() {
        // Two components force the early-exit branch mid-batch.
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(2, 3, 1).unwrap();
        let g = b.build();
        for seed in 0..4u64 {
            let reference = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, seed);
            let batched = LandmarkIndex::build_with_solver(
                &g,
                4,
                SelectionStrategy::Farthest,
                seed,
                3,
                &seq_solver,
            );
            assert_eq!(batched, reference, "seed={seed}");
        }
    }

    #[test]
    fn from_raw_validates_shape() {
        let g = grid3x3();
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 1);
        let rebuilt = LandmarkIndex::from_raw(
            idx.landmarks().to_vec(),
            idx.tables().to_vec().into(),
            idx.node_count(),
        )
        .unwrap();
        assert_eq!(rebuilt, idx);
        assert!(LandmarkIndex::from_raw(vec![0], vec![1, 2, 3].into(), 9).is_err());
        assert!(LandmarkIndex::from_raw(vec![99], vec![0; 9].into(), 9).is_err());
    }
}
