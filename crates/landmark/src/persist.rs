//! Binary (de)serialization for [`LandmarkIndex`].
//!
//! Landmark tables are the expensive offline artifact (`|L|` full
//! Dijkstras, `|L|·n` distances — ≈ 800 MB for the USA network at
//! `|L| = 16`). Persisting them makes full-scale repro runs restartable.
//! Same design as `kpj_graph::io::write_binary`: little-endian dump with a
//! magic/version header, bounds-checked on load.

use std::io::{BufReader, BufWriter, Read, Write};

use kpj_graph::{Length, NodeId};

use crate::LandmarkIndex;

const MAGIC: &[u8; 8] = b"KPJLMARK";
const VERSION: u32 = 1;

/// Error type for landmark-index loading.
#[derive(Debug)]
pub enum PersistError {
    /// The bytes are not a landmark index (or a newer version).
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Format(m) => write!(f, "landmark index format error: {m}"),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl LandmarkIndex {
    /// Serialize the index (see the module docs for the layout).
    pub fn write_binary<W: Write>(&self, w: W) -> std::io::Result<()> {
        let mut w = BufWriter::new(w);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        w.write_all(&(self.node_count() as u64).to_le_bytes())?;
        for &l in self.landmarks() {
            w.write_all(&l.to_le_bytes())?;
        }
        for l in 0..self.len() {
            for v in 0..self.node_count() {
                w.write_all(&self.landmark_distance(l, v as NodeId).to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Deserialize an index written by [`LandmarkIndex::write_binary`].
    pub fn read_binary<R: Read>(r: R) -> Result<LandmarkIndex, PersistError> {
        let mut r = BufReader::new(r);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format("bad magic".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let count = read_u64(&mut r)? as usize;
        let n = read_u64(&mut r)? as usize;
        if n >= u32::MAX as usize || count > n.max(1) {
            return Err(PersistError::Format(format!(
                "implausible header: |L|={count}, n={n}"
            )));
        }
        let mut landmarks = Vec::with_capacity(count);
        for _ in 0..count {
            let l = read_u32(&mut r)?;
            if l as usize >= n {
                return Err(PersistError::Format(format!("landmark {l} out of range")));
            }
            landmarks.push(l);
        }
        let mut tables = vec![0 as Length; count * n];
        let mut buf = [0u8; 8];
        for slot in tables.iter_mut() {
            r.read_exact(&mut buf)?;
            *slot = Length::from_le_bytes(buf);
        }
        Ok(LandmarkIndex::from_parts(landmarks, tables, n))
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelectionStrategy;
    use kpj_graph::GraphBuilder;

    fn index() -> LandmarkIndex {
        let mut b = GraphBuilder::new(12);
        for i in 0..11u32 {
            b.add_bidirectional(i, i + 1, i + 1).unwrap();
        }
        let g = b.build();
        LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, 9)
    }

    #[test]
    fn roundtrip_preserves_bounds() {
        let idx = index();
        let mut buf = Vec::new();
        idx.write_binary(&mut buf).unwrap();
        let idx2 = LandmarkIndex::read_binary(buf.as_slice()).unwrap();
        assert_eq!(idx2.landmarks(), idx.landmarks());
        assert_eq!(idx2.node_count(), idx.node_count());
        for u in 0..12u32 {
            for v in 0..12u32 {
                assert_eq!(idx.lower_bound(u, v), idx2.lower_bound(u, v));
            }
        }
        let qa = idx.for_targets(&[3, 9]);
        let qb = idx2.for_targets(&[3, 9]);
        for u in 0..12u32 {
            assert_eq!(qa.lb_to_targets(u), qb.lb_to_targets(u));
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(LandmarkIndex::read_binary(&b"nope"[..]).is_err());
        let idx = index();
        let mut buf = Vec::new();
        idx.write_binary(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(LandmarkIndex::read_binary(buf.as_slice()).is_err());
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(LandmarkIndex::read_binary(bad_magic.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_landmark() {
        let idx = index();
        let mut buf = Vec::new();
        idx.write_binary(&mut buf).unwrap();
        // Landmark ids start after magic+version+2×u64.
        let lm_start = 8 + 4 + 8 + 8;
        buf[lm_start..lm_start + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(LandmarkIndex::read_binary(buf.as_slice()).is_err());
    }
}
