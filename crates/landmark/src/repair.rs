//! Incremental landmark-table repair after a batch of edge-weight
//! changes — bounded Dijkstra from the changed edges instead of a full
//! rebuild, bit-identical to rebuilding every row from scratch.
//!
//! ## Why repair must keep the landmark *set*
//!
//! [`SelectionStrategy::Farthest`](crate::SelectionStrategy) breaks ties
//! with the selection RNG, so re-running selection on the updated graph
//! could pick different landmarks even for a tiny weight change. Repair
//! therefore carries the existing landmark ids over verbatim and only
//! fixes their distance rows; the full-rebuild reference
//! ([`LandmarkIndex::rebuilt`]) does the same, which is what makes
//! bit-identity a meaningful oracle check (distances are unique scalars —
//! unlike paths there are no tie representatives to normalize).
//!
//! ## The per-row algorithm (Ramalingam–Reps style)
//!
//! For one landmark `s` with old distance row `d`:
//!
//! 1. **Affected region** `R`: every node whose old distance might be
//!    stale-low after a weight *increase*. Seeded at the heads of
//!    increased edges that were tight (`d[u] + w_old == d[v]`), then grown
//!    along edges tight under the old weights. This overapproximates the
//!    truly affected set (a node with an untouched alternative support is
//!    re-settled to the same value), but never misses: any shortest path
//!    that used an increased edge continues from its head along old tight
//!    edges. The landmark itself is never affected (`d[s] = 0` always).
//! 2. Reset `d[v] = ∞` for `v ∈ R` and seed a heap with (a) the best
//!    boundary value `min d[u] + w_new(u→v)` over in-edges of each
//!    `v ∈ R` from outside `R`, and (b) `d[u] + w_new` for every
//!    *decreased* edge with tail outside `R`.
//! 3. Run Dijkstra to fixpoint over the whole graph (decreases may
//!    propagate beyond `R`). Initial distances are valid upper bounds —
//!    outside `R` the new distance can only be ≤ the old one — so this is
//!    plain Dijkstra with warm-started bounds and reproduces exactly the
//!    distance field a from-scratch run would compute.
//!
//! Cost is proportional to the perturbed region plus its frontier, not to
//! the graph: the sustained-update experiments in `EXPERIMENTS.md` show
//! the repair/rebuild gap this buys on road-like graphs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kpj_graph::{EdgeDelta, Graph, Length, NodeId, INFINITE_LENGTH};
use kpj_sp::DenseDijkstra;

use crate::LandmarkIndex;

/// Work counters from one [`LandmarkIndex::repaired`] call, for metrics
/// and the repair-vs-rebuild experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Rows repaired (= number of landmarks).
    pub rows: usize,
    /// Nodes placed in the affected region across all rows.
    pub affected_nodes: u64,
    /// Heap pops that settled a node across all rows.
    pub settled_nodes: u64,
}

/// Reusable per-row scratch so an `|L|`-row repair allocates `O(n)` once.
struct RowScratch {
    /// Old distance row, repaired in place.
    dist: Vec<Length>,
    /// Membership bitmap for the affected region `R`.
    in_region: Vec<bool>,
    /// Nodes currently flagged in `in_region` (for cheap reset).
    region: Vec<NodeId>,
    /// BFS stack for growing `R`.
    stack: Vec<NodeId>,
    /// Lazy-deletion Dijkstra heap.
    heap: BinaryHeap<Reverse<(Length, NodeId)>>,
}

impl RowScratch {
    fn new(n: usize) -> Self {
        RowScratch {
            dist: Vec::with_capacity(n),
            in_region: vec![false; n],
            region: Vec::new(),
            stack: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }
}

/// The weight an edge copy had *before* the batch: the delta's pre-batch
/// effective (minimum) weight for changed pairs, the copy's own weight
/// otherwise. `deltas` must be sorted by `(from, to)`.
fn old_weight(deltas: &[EdgeDelta], from: NodeId, to: NodeId, current: u32) -> u32 {
    match deltas.binary_search_by_key(&(from, to), |d| (d.from, d.to)) {
        Ok(i) => deltas[i].old_weight,
        Err(_) => current,
    }
}

fn repair_row(g: &Graph, deltas: &[EdgeDelta], source: NodeId, s: &mut RowScratch) -> (u64, u64) {
    debug_assert!(deltas
        .windows(2)
        .all(|w| (w[0].from, w[0].to) < (w[1].from, w[1].to)));
    // Phase 1: grow the affected region from increased tight edges.
    s.region.clear();
    s.stack.clear();
    let mark = |v: NodeId, s: &mut RowScratch| {
        if v != source && !s.in_region[v as usize] {
            s.in_region[v as usize] = true;
            s.region.push(v);
            s.stack.push(v);
        }
    };
    for d in deltas {
        let du = s.dist[d.from as usize];
        if d.new_weight > d.old_weight
            && du != INFINITE_LENGTH
            && du + d.old_weight as Length == s.dist[d.to as usize]
        {
            mark(d.to, s);
        }
    }
    while let Some(u) = s.stack.pop() {
        let du = s.dist[u as usize];
        if du == INFINITE_LENGTH {
            continue;
        }
        for e in g.out_edges(u) {
            let w_old = old_weight(deltas, u, e.to, e.weight);
            if du + w_old as Length == s.dist[e.to as usize] {
                mark(e.to, s);
            }
        }
    }
    let affected = s.region.len() as u64;
    // Phase 2: reset the region and seed the heap.
    s.heap.clear();
    for &v in &s.region {
        s.dist[v as usize] = INFINITE_LENGTH;
    }
    for &v in &s.region {
        let mut best = INFINITE_LENGTH;
        for e in g.in_edges(v) {
            let u = e.to; // reverse view: `to` holds the tail
            if s.in_region[u as usize] {
                continue;
            }
            let du = s.dist[u as usize];
            if du != INFINITE_LENGTH {
                best = best.min(du + e.weight as Length);
            }
        }
        if best != INFINITE_LENGTH {
            s.heap.push(Reverse((best, v)));
        }
    }
    for d in deltas {
        if d.new_weight < d.old_weight && !s.in_region[d.from as usize] {
            let du = s.dist[d.from as usize];
            if du != INFINITE_LENGTH {
                let cand = du + d.new_weight as Length;
                if cand < s.dist[d.to as usize] {
                    s.heap.push(Reverse((cand, d.to)));
                }
            }
        }
    }
    // Phase 3: Dijkstra to fixpoint with warm-started upper bounds.
    let mut settled = 0u64;
    while let Some(Reverse((dist, v))) = s.heap.pop() {
        if dist >= s.dist[v as usize] {
            continue;
        }
        s.dist[v as usize] = dist;
        settled += 1;
        for e in g.out_edges(v) {
            let cand = dist + e.weight as Length;
            if cand < s.dist[e.to as usize] {
                s.heap.push(Reverse((cand, e.to)));
            }
        }
    }
    for &v in &s.region {
        s.in_region[v as usize] = false;
    }
    (affected, settled)
}

impl LandmarkIndex {
    /// Repair the distance tables against `updated` (the post-batch graph)
    /// given the batch's [`EdgeDelta`]s, keeping the landmark set. The
    /// result is **bit-identical** to [`LandmarkIndex::rebuilt`] on the
    /// same graph — the oracle's interleaving mode enforces exactly that
    /// after every applied batch.
    pub fn repaired(&self, updated: &Graph, deltas: &[EdgeDelta]) -> (LandmarkIndex, RepairStats) {
        let n = self.node_count();
        assert_eq!(
            n,
            updated.node_count(),
            "weight updates never change topology"
        );
        let mut sorted: Vec<EdgeDelta> = deltas
            .iter()
            .copied()
            .filter(|d| d.old_weight != d.new_weight)
            .collect();
        sorted.sort_unstable_by_key(|d| (d.from, d.to));
        sorted.dedup_by_key(|d| (d.from, d.to));
        let mut stats = RepairStats {
            rows: self.landmarks().len(),
            ..RepairStats::default()
        };
        let mut tables: Vec<Length> = self.tables().to_vec();
        if !sorted.is_empty() {
            let mut scratch = RowScratch::new(n);
            for (l, &source) in self.landmarks().iter().enumerate() {
                let row = &mut tables[l * n..(l + 1) * n];
                scratch.dist.clear();
                scratch.dist.extend_from_slice(row);
                let (affected, settled) = repair_row(updated, &sorted, source, &mut scratch);
                stats.affected_nodes += affected;
                stats.settled_nodes += settled;
                row.copy_from_slice(&scratch.dist);
            }
        }
        (
            LandmarkIndex::from_parts(self.landmarks().to_vec(), tables, n),
            stats,
        )
    }

    /// Rebuild every distance row from scratch on `g`, keeping the
    /// landmark set — the reference [`LandmarkIndex::repaired`] must match
    /// bit-for-bit.
    pub fn rebuilt(&self, g: &Graph) -> LandmarkIndex {
        let n = self.node_count();
        assert_eq!(n, g.node_count(), "weight updates never change topology");
        let mut tables = Vec::with_capacity(self.landmarks().len() * n);
        for &l in self.landmarks() {
            tables.extend(DenseDijkstra::from_source(g, l).into_dist());
        }
        LandmarkIndex::from_parts(self.landmarks().to_vec(), tables, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::{GraphBuilder, WeightUpdate};

    use crate::SelectionStrategy;

    /// Deterministic pseudo-random road-like graph: a `w × h` grid with
    /// jittered weights plus a few long chords.
    fn grid(w: u32, h: u32, seed: u64) -> Graph {
        let n = (w * h) as usize;
        let mut b = GraphBuilder::new(n);
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    let wt = (rng() % 9 + 1) as u32;
                    b.add_bidirectional(v, v + 1, wt).unwrap();
                }
                if y + 1 < h {
                    let wt = (rng() % 9 + 1) as u32;
                    b.add_bidirectional(v, v + w, wt).unwrap();
                }
            }
        }
        for _ in 0..(n / 8) {
            let u = (rng() % n as u64) as u32;
            let v = (rng() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, (rng() % 30 + 5) as u32).unwrap();
            }
        }
        b.build()
    }

    fn random_batch(g: &Graph, seed: u64, count: usize) -> Vec<WeightUpdate> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = g.node_count() as u64;
        let mut batch = Vec::new();
        while batch.len() < count {
            let u = (rng() % n) as NodeId;
            let edges = g.out_edges(u);
            if edges.is_empty() {
                continue;
            }
            let e = edges[(rng() % edges.len() as u64) as usize];
            // Mix of sharp increases, decreases, and small jitters.
            let w = match rng() % 4 {
                0 => e.weight.saturating_mul(3) + 1,
                1 => (e.weight / 3).max(1),
                2 => e.weight + 1,
                _ => e.weight.saturating_sub(1).max(1),
            };
            batch.push(WeightUpdate {
                from: u,
                to: e.to,
                weight: w,
            });
        }
        batch
    }

    #[test]
    fn repair_is_bit_identical_to_rebuild_across_batches() {
        let mut g = grid(9, 7, 0xA5A5);
        let mut idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 42);
        for round in 0..12u64 {
            let batch = random_batch(&g, 0xBEEF ^ round, 5);
            let (g2, deltas) = g.with_updated_weights(&batch).unwrap();
            let (repaired, stats) = idx.repaired(&g2, &deltas);
            let rebuilt = idx.rebuilt(&g2);
            assert_eq!(
                repaired.landmarks(),
                idx.landmarks(),
                "repair must keep the landmark set"
            );
            assert_eq!(
                repaired.tables(),
                rebuilt.tables(),
                "round {round}: repaired tables diverge from rebuild"
            );
            assert_eq!(stats.rows, 4);
            g = g2;
            idx = repaired;
        }
    }

    #[test]
    fn disconnecting_region_goes_infinite_and_comes_back() {
        // 0 -> 1 -> 2, plus detour 0 -> 2 that starts worse.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(0, 2, 10).unwrap();
        let g = b.build();
        let idx = LandmarkIndex::build(&g, 1, SelectionStrategy::Random, 7);
        // Sharp increase reroutes through the detour.
        let (g2, deltas) = g
            .with_updated_weights(&[WeightUpdate {
                from: 1,
                to: 2,
                weight: 100,
            }])
            .unwrap();
        let (repaired, _) = idx.repaired(&g2, &deltas);
        assert_eq!(repaired.tables(), idx.rebuilt(&g2).tables());
        // And a decrease that restores the original route.
        let (g3, deltas) = g2
            .with_updated_weights(&[WeightUpdate {
                from: 1,
                to: 2,
                weight: 2,
            }])
            .unwrap();
        let (repaired2, _) = repaired.repaired(&g3, &deltas);
        assert_eq!(repaired2.tables(), repaired.rebuilt(&g3).tables());
    }

    #[test]
    fn empty_delta_batch_is_a_cheap_identity() {
        let g = grid(4, 4, 9);
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 1);
        let (repaired, stats) = idx.repaired(&g, &[]);
        assert_eq!(repaired.tables(), idx.tables());
        assert_eq!(stats.affected_nodes, 0);
        assert_eq!(stats.settled_nodes, 0);
    }

    #[test]
    fn zero_weight_edges_repair_exactly() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0).unwrap();
        b.add_edge(1, 2, 0).unwrap();
        b.add_edge(2, 3, 4).unwrap();
        b.add_edge(0, 3, 9).unwrap();
        let g = b.build();
        let idx = LandmarkIndex::build(&g, 1, SelectionStrategy::Random, 3);
        let (g2, deltas) = g
            .with_updated_weights(&[
                WeightUpdate {
                    from: 2,
                    to: 3,
                    weight: 20,
                },
                WeightUpdate {
                    from: 1,
                    to: 2,
                    weight: 1,
                },
            ])
            .unwrap();
        let (repaired, _) = idx.repaired(&g2, &deltas);
        assert_eq!(repaired.tables(), idx.rebuilt(&g2).tables());
    }
}
